"""RA06 — multiply entry points accept and forward threads=/executor=."""

from repro.analyze.rules_ast import check_executor_plumbing

from tests.analyze.conftest import make_source


class TestExecutorPlumbing:
    def test_override_missing_params_flagged(self):
        text = """
from repro.formats.base import MatrixFormat

class Fmt(MatrixFormat):
    def right_multiply(self, x):
        return compute(x)
"""
        findings = check_executor_plumbing(make_source(text))
        assert len(findings) == 1
        f = findings[0]
        assert f.rule == "RA06"
        assert f.scope == "Fmt.right_multiply"
        assert "threads" in f.detail and "executor" in f.detail

    def test_accepted_but_dropped_flagged(self):
        text = """
class Fmt(MatrixFormat):
    def right_multiply(self, x, threads=1, executor=None):
        return compute(x)
"""
        findings = check_executor_plumbing(make_source(text))
        assert len(findings) == 1
        assert "never forwarded" in findings[0].message

    def test_forwarded_params_clean(self):
        text = """
class Fmt(MatrixFormat):
    def right_multiply(self, x, threads=1, executor=None):
        return compute(x, threads=threads, executor=executor)
"""
        assert check_executor_plumbing(make_source(text)) == []

    def test_kwargs_splat_counts_as_forwarding(self):
        text = """
class Fmt(MatrixFormat):
    def right_multiply(self, x, **kwargs):
        return self._delegate.right_multiply(x, **kwargs)
"""
        assert check_executor_plumbing(make_source(text)) == []

    def test_kwargs_swallowed_flagged(self):
        text = """
class Fmt(MatrixFormat):
    def right_multiply(self, x, **kwargs):
        return compute(x)
"""
        assert len(check_executor_plumbing(make_source(text))) == 1

    def test_indirect_subclass_covered(self):
        text = """
class Base(MatrixFormat):
    pass

class Fmt(Base):
    def left_multiply(self, y):
        return compute(y)
"""
        findings = check_executor_plumbing(make_source(text))
        assert [f.scope for f in findings] == ["Fmt.left_multiply"]

    def test_unrelated_class_same_method_name_ignored(self):
        # BlockExecutor has right_multiply too — only MatrixFormat
        # subclasses are protocol implementations.
        text = """
class BlockExecutor:
    def right_multiply(self, matrix, x):
        return matrix.right_multiply(x)
"""
        assert check_executor_plumbing(make_source(text)) == []

    def test_module_level_batch_helper_checked(self):
        text = """
def batch_right_multiply(matrix, vectors):
    return matrix.right_multiply_matrix(vectors)
"""
        findings = check_executor_plumbing(make_source(text))
        assert [f.scope for f in findings] == ["batch_right_multiply"]

    def test_module_helper_with_plumbing_clean(self):
        text = """
def batch_right_multiply(matrix, vectors, executor=None, threads=1):
    return matrix.right_multiply_matrix(
        vectors, threads=threads, executor=executor
    )
"""
        assert check_executor_plumbing(make_source(text)) == []

    def test_waiver_on_def_line_suppresses(self):
        text = """
def looped_right_multiply(matrix, vectors):  # ra: executor — serial baseline
    return loop(matrix, vectors)
"""
        assert check_executor_plumbing(make_source(text)) == []

    def test_non_multiply_names_ignored(self):
        text = """
def multiply_helper(matrix, vectors):
    return None

def right_rotate(x):
    return None
"""
        assert check_executor_plumbing(make_source(text)) == []

"""The analyze driver: exit codes, JSON report, baseline flags."""

import json

import pytest

from repro.analyze.cli import main

BAD_LOCK = """import threading


class Guarded:
    def __init__(self):
        self._lock = threading.Lock()
        self._state = 0

    def bump(self):
        self._state += 1
"""


@pytest.fixture
def bad_tree(tmp_path):
    (tmp_path / "locky.py").write_text(BAD_LOCK)
    return tmp_path


@pytest.fixture
def clean_tree(tmp_path):
    (tmp_path / "fine.py").write_text("x = 1\n")
    return tmp_path


def _run(args, capsys):
    code = main([str(a) for a in args])
    return code, capsys.readouterr()


class TestExitCodes:
    def test_clean_tree_exits_zero(self, clean_tree, tmp_path, capsys):
        code, _ = _run(
            [clean_tree, "--baseline", tmp_path / "b.json"], capsys
        )
        assert code == 0

    def test_new_finding_exits_one(self, bad_tree, tmp_path, capsys):
        code, out = _run(
            [bad_tree, "--baseline", tmp_path / "b.json"], capsys
        )
        assert code == 1
        assert "RA03" in out.out

    def test_unknown_rule_exits_two(self, clean_tree, tmp_path, capsys):
        code, out = _run(
            [clean_tree, "--select", "RA99",
             "--baseline", tmp_path / "b.json"], capsys
        )
        assert code == 2
        assert "unknown rule" in out.err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        code, _ = _run(
            [tmp_path / "gone", "--baseline", tmp_path / "b.json"], capsys
        )
        assert code == 2

    def test_parse_error_exits_one(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def oops(:\n")
        code, out = _run(
            [tmp_path, "--baseline", tmp_path / "b.json"], capsys
        )
        assert code == 1
        assert "PARSE ERROR" in out.out


class TestBaselineRatchet:
    def test_write_then_pass(self, bad_tree, tmp_path, capsys):
        baseline = tmp_path / "b.json"
        code, _ = _run([bad_tree, "--write-baseline",
                        "--baseline", baseline], capsys)
        assert code == 0 and baseline.exists()
        code, out = _run([bad_tree, "--baseline", baseline], capsys)
        assert code == 0
        assert "1 baselined" in out.out

    def test_new_debt_still_fails(self, bad_tree, tmp_path, capsys):
        baseline = tmp_path / "b.json"
        _run([bad_tree, "--write-baseline", "--baseline", baseline], capsys)
        extra = BAD_LOCK.replace(
            "        self._state += 1",
            "        self._state += 1\n        self._other = 2",
        )
        (bad_tree / "locky.py").write_text(extra)
        code, out = _run([bad_tree, "--baseline", baseline], capsys)
        assert code == 1
        assert "_other" in out.out

    def test_stale_entry_warns_but_passes(self, bad_tree, tmp_path, capsys):
        baseline = tmp_path / "b.json"
        _run([bad_tree, "--write-baseline", "--baseline", baseline], capsys)
        (bad_tree / "locky.py").write_text("x = 1\n")  # debt paid down
        code, out = _run([bad_tree, "--baseline", baseline], capsys)
        assert code == 0
        assert "stale" in out.out

    def test_strict_baseline_fails_on_stale(self, bad_tree, tmp_path, capsys):
        baseline = tmp_path / "b.json"
        _run([bad_tree, "--write-baseline", "--baseline", baseline], capsys)
        (bad_tree / "locky.py").write_text("x = 1\n")
        code, _ = _run(
            [bad_tree, "--baseline", baseline, "--strict-baseline"], capsys
        )
        assert code == 1

    def test_no_baseline_ignores_file(self, bad_tree, tmp_path, capsys):
        baseline = tmp_path / "b.json"
        _run([bad_tree, "--write-baseline", "--baseline", baseline], capsys)
        code, _ = _run(
            [bad_tree, "--baseline", baseline, "--no-baseline"], capsys
        )
        assert code == 1


class TestJsonOutput:
    def test_json_report_shape(self, bad_tree, tmp_path, capsys):
        code, out = _run(
            [bad_tree, "--format", "json", "--baseline", tmp_path / "b.json"],
            capsys,
        )
        payload = json.loads(out.out)
        assert code == 1
        assert payload["failed"] is True
        assert payload["files_scanned"] == 1
        assert payload["findings"][0]["rule"] == "RA03"
        assert payload["baseline"]["new"][0]["detail"] == "_state"

    def test_output_file_written(self, bad_tree, tmp_path, capsys):
        report = tmp_path / "artifacts" / "report.json"
        _run(
            [bad_tree, "--baseline", tmp_path / "b.json", "--output", report],
            capsys,
        )
        payload = json.loads(report.read_text())
        assert payload["failed"] is True

    def test_select_restricts_rules(self, bad_tree, tmp_path, capsys):
        code, out = _run(
            [bad_tree, "--select", "RA04", "--format", "json",
             "--baseline", tmp_path / "b.json"],
            capsys,
        )
        payload = json.loads(out.out)
        assert code == 0
        assert payload["rules"] == ["RA04"]
        assert payload["findings"] == []


class TestPackagedEntryPoints:
    def test_repro_cli_has_analyze(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["analyze", "somepath", "--format", "json"])
        assert args.paths == ["somepath"]
        assert args.output_format == "json"

    def test_module_entry_point_importable(self):
        import repro.analyze.__main__  # noqa: F401

"""RA04 — broad excepts only at the documented worker/server boundaries."""

from repro.analyze.rules_ast import check_broad_except

from tests.analyze.conftest import make_source

BROAD = """
def handler():
    try:
        work()
    except Exception:
        return None
"""


class TestBroadExcept:
    def test_broad_except_flagged(self):
        findings = check_broad_except(make_source(BROAD))
        assert len(findings) == 1
        assert findings[0].rule == "RA04"
        assert findings[0].scope == "handler"
        assert findings[0].detail == "except Exception"

    def test_bare_except_flagged(self):
        text = """
def handler():
    try:
        work()
    except:
        return None
"""
        findings = check_broad_except(make_source(text))
        assert [f.detail for f in findings] == ["bare except"]

    def test_base_exception_and_tuple_flagged(self):
        text = """
def handler():
    try:
        work()
    except (ValueError, BaseException):
        return None
"""
        assert len(check_broad_except(make_source(text))) == 1

    def test_typed_except_is_clean(self):
        text = """
def handler():
    try:
        work()
    except ValueError:
        return None
"""
        assert check_broad_except(make_source(text)) == []

    def test_bare_reraise_is_clean(self):
        text = """
def handler():
    try:
        work()
    except Exception:
        cleanup()
        raise
"""
        assert check_broad_except(make_source(text)) == []

    def test_named_reraise_is_clean(self):
        text = """
def handler():
    try:
        work()
    except Exception as exc:
        log(exc)
        raise exc
"""
        assert check_broad_except(make_source(text)) == []

    def test_raising_something_else_still_flagged(self):
        # Swallowing the original and raising a fresh error is exactly
        # the taxonomy-bypass the rule exists to catch.
        text = """
def handler():
    try:
        work()
    except Exception:
        raise RuntimeError("nope")
"""
        assert len(check_broad_except(make_source(text))) == 1

    def test_boundary_files_exempt(self):
        for boundary in ("serve/jobs.py", "serve/server.py"):
            src = make_source(BROAD, rel=f"src/repro/{boundary}")
            assert check_broad_except(src) == []

    def test_waiver_suppresses(self):
        text = """
def handler():
    try:
        work()
    except Exception:  # ra: broad-except — plugin import guard
        return None
"""
        assert check_broad_except(make_source(text)) == []

    def test_scope_is_dotted_path(self):
        text = """
class Worker:
    def run(self):
        try:
            work()
        except Exception:
            pass
"""
        findings = check_broad_except(make_source(text))
        assert findings[0].scope == "Worker.run"

"""RA09 — serve/shard/resilience counters go through ``repro.obs``."""

from repro.analyze.engine import ALL_RULES
from repro.analyze.findings import RULE_WAIVER_TAGS
from repro.analyze.rules_ast import (
    AST_RULES,
    COUNTER_DISCIPLINE_DIRS,
    check_counter_discipline,
)

from tests.analyze.conftest import make_source

AD_HOC_COUNTER = """
class Registry:
    def get(self, name):
        self.hits += 1
        return self._entries[name]
"""

WAIVED_COUNTER = """
class Breaker:
    def record_failure(self):
        self.opens += 1  # ra: obs — per-instance tally aggregated at scrape time
"""

PRIVATE_ACCUMULATOR = """
class Registry:
    def _absorb(self, matrix):
        self._shard_loads_absorbed += matrix.shard_loads
"""

OBS_COUNTER_PROPERTY = """
class Registry:
    def get(self, name):
        self._c_hits.inc()
        return self._entries[name]

    @property
    def hits(self):
        return int(self._c_hits.value)
"""

NON_COUNTER_ARITHMETIC = """
class Window:
    def record(self, seconds):
        self.total_seconds += seconds
        self.offset += self.stride
"""

FLOAT_COUNTER = """
class Pool:
    def lease(self):
        self.leases += 1.0
"""


class TestCounterDiscipline:
    def test_flags_public_increment_in_serve(self):
        findings = check_counter_discipline(
            make_source(AD_HOC_COUNTER, rel="src/repro/serve/registry.py")
        )
        assert [f.rule for f in findings] == ["RA09"]
        assert findings[0].detail == "hits"
        assert findings[0].scope == "Registry.get"
        assert "repro.obs" in findings[0].message

    def test_float_increment_is_still_a_counter(self):
        findings = check_counter_discipline(
            make_source(FLOAT_COUNTER, rel="src/repro/shard/matrix.py")
        )
        assert [f.detail for f in findings] == ["leases"]

    def test_waiver_suppresses(self):
        findings = check_counter_discipline(
            make_source(WAIVED_COUNTER, rel="src/repro/resilience/policy.py")
        )
        assert findings == []

    def test_private_accumulators_exempt(self):
        findings = check_counter_discipline(
            make_source(PRIVATE_ACCUMULATOR, rel="src/repro/serve/registry.py")
        )
        assert findings == []

    def test_obs_backed_property_is_clean(self):
        findings = check_counter_discipline(
            make_source(OBS_COUNTER_PROPERTY, rel="src/repro/serve/registry.py")
        )
        assert findings == []

    def test_non_constant_increments_exempt(self):
        findings = check_counter_discipline(
            make_source(NON_COUNTER_ARITHMETIC, rel="src/repro/serve/stats.py")
        )
        assert findings == []

    def test_out_of_scope_paths_exempt(self):
        for rel in (
            "src/repro/core/multiply.py",
            "src/repro/obs/trace.py",
            "src/repro/solve/driver.py",
        ):
            assert check_counter_discipline(
                make_source(AD_HOC_COUNTER, rel=rel)
            ) == []

    def test_scope_dirs_cover_the_instrumented_layers(self):
        assert COUNTER_DISCIPLINE_DIRS == ("serve/", "shard/", "resilience/")


class TestRegistration:
    def test_rule_is_wired_into_the_engine(self):
        assert "RA09" in ALL_RULES
        assert AST_RULES["RA09"] is check_counter_discipline
        assert RULE_WAIVER_TAGS["RA09"] == "obs"

"""Regression tests for the defects the analyzer/typing wave surfaced.

Three genuine bugs came out of the first ``repro analyze`` + strict
mypy run; each gets a behavioural test here so the fixes cannot
regress silently:

1. RA03: ``LazyShardedMatrix.enable_plan_retention`` published
   ``_retain_plans`` without the shard lock, racing concurrent cold
   shard loads on serving threads.
2. mypy: ``blocked_payload`` fed a ``kind`` of ``None`` into
   ``bytearray.append`` for blocks whose spec registers no kind tag —
   a ``TypeError`` instead of the typed ``SerializationError``.
3. mypy: the stats snapshots declared ``dict[str, int]``-shaped
   literals then assigned floats into them; the snapshot contract is
   all-float values.
"""

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.io.serialize import blocked_payload, save_matrix
from repro.serve.stats import LatencyWindow, ServeStats
from repro.shard import LazyShardedMatrix, build_sharded


class _ProbeLock:
    """Context-manager lock recording acquisition for assertions."""

    def __init__(self):
        self.acquisitions = 0
        self.held = False

    def __enter__(self):
        self.acquisitions += 1
        self.held = True
        return self

    def __exit__(self, *exc):
        self.held = False
        return False


class TestShardRetentionLock:
    @pytest.fixture
    def lazy(self, rng, tmp_path):
        dense = (rng.random((24, 16)) < 0.3) * 2.0
        path = tmp_path / "m.gcmx"
        save_matrix(build_sharded(dense, n_shards=2), path)
        return LazyShardedMatrix(path)

    def test_retention_write_happens_under_lock(self, lazy):
        probe = _ProbeLock()
        lazy._lock = probe
        lazy.enable_plan_retention(False)
        assert probe.acquisitions >= 1
        assert lazy._retain_plans is False
        lazy.enable_plan_retention(True)
        assert lazy._retain_plans is True

    def test_linter_agrees_shard_matrix_is_clean(self):
        # The static half: RA03 over the real source must stay quiet.
        import repro.shard.matrix as shard_matrix
        from pathlib import Path

        from repro.analyze.engine import load_source
        from repro.analyze.rules_ast import check_lock_discipline

        source = load_source(Path(shard_matrix.__file__))
        assert check_lock_discipline(source) == []


class _KindlessBlock:
    """Quacks like a block whose spec has no serialization kind."""

    format_name = "auto"  # registered build-only spec: kind is None
    values = np.zeros(1)


class _FakeBlocked:
    shape = (1, 1)
    blocks = [_KindlessBlock()]


class TestBlockedPayloadKindGuard:
    def test_kindless_block_raises_typed_error(self):
        with pytest.raises(SerializationError, match="cannot serialize block"):
            blocked_payload(_FakeBlocked())


class TestStatsSnapshotTypes:
    def test_window_snapshot_mixes_counts_and_float_latencies(self):
        window = LatencyWindow()
        window.record(0.25)
        window.record(0.5)
        snap = window.snapshot()
        assert snap["count"] == 2
        # The declared value type is float: every latency figure must be
        # a real float, not a numpy scalar or a truncated int.
        for key in ("mean_ms", "p50_ms", "p90_ms", "p99_ms"):
            assert type(snap[key]) is float
            assert snap[key] > 0.0

    def test_empty_window_snapshot(self):
        snap = LatencyWindow().snapshot()
        assert snap == {"count": 0}

    def test_serve_stats_snapshot_nested_shape(self):
        stats = ServeStats()
        stats.record("multiply", 0.1)
        stats.record("multiply", None, error=True)
        snap = stats.snapshot()
        assert set(snap) == {"multiply"}
        inner = snap["multiply"]
        assert inner["requests"] == 2
        assert inner["errors"] == 1
        assert type(inner["mean_ms"]) is float

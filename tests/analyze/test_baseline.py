"""Baseline ratchet semantics: new fails, known passes, fixed goes stale."""

import json

import pytest

from repro.analyze.baseline import Baseline, load_baseline, write_baseline
from repro.analyze.findings import Finding
from repro.errors import ReproError


def _finding(detail="_x", line=5):
    return Finding(rule="RA03", path="src/mod.py", line=line,
                   message="m", scope="C.m", detail=detail)


class TestSplit:
    def test_known_finding_matches(self):
        base = Baseline.from_findings([_finding()])
        new, stale = base.split([_finding(line=99)])  # moved lines still match
        assert new == [] and stale == []

    def test_new_finding_reported(self):
        base = Baseline.from_findings([_finding("_x")])
        new, stale = base.split([_finding("_x"), _finding("_y")])
        assert [f.detail for f in new] == ["_y"]
        assert stale == []

    def test_fixed_finding_goes_stale(self):
        base = Baseline.from_findings([_finding("_x"), _finding("_y")])
        new, stale = base.split([_finding("_x")])
        assert new == []
        assert stale == [_finding("_y").key]

    def test_empty_baseline_rejects_everything(self):
        new, stale = Baseline().split([_finding()])
        assert len(new) == 1 and stale == []


class TestFileRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "analysis" / "baseline.json"
        write_baseline(path, [_finding()])
        base = load_baseline(path)
        assert _finding().key in base.entries

    def test_missing_file_is_empty(self, tmp_path):
        base = load_baseline(tmp_path / "absent.json")
        assert base.entries == {}

    def test_written_file_is_versioned_json(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [])
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        assert payload["findings"] == []

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(ReproError):
            load_baseline(path)

"""RA08 — all catalog SQL goes through ``store/catalog.py``."""

from repro.analyze.engine import ALL_RULES
from repro.analyze.findings import RULE_WAIVER_TAGS
from repro.analyze.rules_ast import AST_RULES, CATALOG_MODULE, check_catalog_sql

from tests.analyze.conftest import make_source

OUTSIDE_IMPORT = """
import sqlite3

def peek(path):
    return sqlite3.connect(path).execute("SELECT 1").fetchone()
"""

OUTSIDE_FROM_IMPORT = """
from sqlite3 import connect

def peek(path):
    return connect(path).execute("SELECT 1").fetchone()
"""

OUTSIDE_WAIVED = """
import sqlite3  # ra: sql — read-only diagnostic script

def peek(path):
    return sqlite3.connect(path).execute("SELECT 1").fetchone()
"""

CATALOG_CLEAN = """
import sqlite3

MIGRATIONS = (
    (1, "CREATE TABLE matrices (name TEXT PRIMARY KEY)"),
    (2, "ALTER TABLE matrices ADD COLUMN bench TEXT"),
)

def upsert(conn, name):
    conn.execute("INSERT INTO matrices (name) VALUES (?)", (name,))
"""

CATALOG_ADHOC_DDL = """
import sqlite3

MIGRATIONS = (
    (1, "CREATE TABLE matrices (name TEXT PRIMARY KEY)"),
)

def ensure_index(conn):
    conn.execute("CREATE INDEX by_name ON matrices(name)")
"""

CATALOG_WAIVED_DDL = """
import sqlite3

MIGRATIONS = (
    (1, "CREATE TABLE matrices (name TEXT PRIMARY KEY)"),
)

def reset(conn):
    conn.execute("DROP TABLE matrices")  # ra: sql — test-only teardown
"""


def catalog_source(text: str):
    return make_source(text, rel=f"src/repro/{CATALOG_MODULE}")


class TestOutsideCatalog:
    def test_import_sqlite3_flagged(self):
        findings = check_catalog_sql(make_source(OUTSIDE_IMPORT))
        assert len(findings) == 1
        f = findings[0]
        assert f.rule == "RA08"
        assert f.detail == "import sqlite3"
        assert CATALOG_MODULE in f.message

    def test_from_import_flagged(self):
        findings = check_catalog_sql(make_source(OUTSIDE_FROM_IMPORT))
        assert len(findings) == 1
        assert findings[0].detail == "from sqlite3 import ..."

    def test_waiver_suppresses(self):
        assert check_catalog_sql(make_source(OUTSIDE_WAIVED)) == []

    def test_unrelated_imports_clean(self):
        assert check_catalog_sql(make_source("import json\nimport os\n")) == []

    def test_ddl_strings_outside_catalog_not_this_rules_business(self):
        # a docs generator mentioning CREATE TABLE in a string is not a
        # second SQL connection path; only the import is the boundary
        text = 'BANNER = "how to CREATE TABLE foo"\n'
        assert check_catalog_sql(make_source(text)) == []


class TestInsideCatalog:
    def test_migrations_and_dml_are_clean(self):
        assert check_catalog_sql(catalog_source(CATALOG_CLEAN)) == []

    def test_adhoc_ddl_flagged(self):
        findings = check_catalog_sql(catalog_source(CATALOG_ADHOC_DDL))
        assert len(findings) == 1
        f = findings[0]
        assert f.rule == "RA08"
        assert f.detail == "CREATE INDEX"
        assert "MIGRATIONS" in f.message

    def test_ddl_waiver_suppresses(self):
        assert check_catalog_sql(catalog_source(CATALOG_WAIVED_DDL)) == []

    def test_sqlite_import_allowed_inside(self):
        # the catalog module is exactly where sqlite3 lives
        text = "import sqlite3\nMIGRATIONS = ()\n"
        assert check_catalog_sql(catalog_source(text)) == []

    def test_ddl_case_insensitive(self):
        text = (
            "MIGRATIONS = ()\n"
            'def f(conn):\n    conn.execute("alter table m add column x")\n'
        )
        findings = check_catalog_sql(catalog_source(text))
        assert len(findings) == 1
        assert findings[0].detail == "alter table"


class TestRegistration:
    def test_rule_registered_everywhere(self):
        assert "RA08" in ALL_RULES
        assert AST_RULES["RA08"] is check_catalog_sql
        assert RULE_WAIVER_TAGS["RA08"] == "sql"

"""RA05 — kernels taking ``out=`` must return the caller's buffer."""

from repro.analyze.rules_ast import check_out_contract

from tests.analyze.conftest import make_source


class TestOutContract:
    def test_fresh_allocation_flagged(self):
        text = """
import numpy as np

def kernel(x, out=None):
    result = np.zeros_like(x)
    if out is not None:
        out[:] = result
    return result
"""
        findings = check_out_contract(make_source(text))
        assert len(findings) == 1
        assert findings[0].rule == "RA05"
        assert findings[0].scope == "kernel"

    def test_returning_out_is_clean(self):
        text = """
def kernel(x, out):
    out[:] = x
    return out
"""
        assert check_out_contract(make_source(text)) == []

    def test_alias_chain_is_clean(self):
        text = """
def kernel(x, out):
    res = out
    final = res
    final[:] = x
    return final
"""
        assert check_out_contract(make_source(text)) == []

    def test_forwarding_out_is_clean(self):
        text = """
def kernel(x, out=None, threads=1):
    return delegate(x, out=out, threads=threads)
"""
        assert check_out_contract(make_source(text)) == []

    def test_in_place_procedure_is_clean(self):
        # No value-bearing return: the fill-in-place convention.
        text = """
def kernel(panel, out):
    for j in range(panel.shape[1]):
        out[:, j] = panel[:, j]
"""
        assert check_out_contract(make_source(text)) == []

    def test_one_bad_path_flags(self):
        # Returning out on one branch but a fresh array on another is
        # still clean for this syntactic check (some path returns out);
        # only functions with *no* out-returning path are flagged.
        text = """
def kernel(x, out=None):
    if out is None:
        return fresh(x)
    return out
"""
        assert check_out_contract(make_source(text)) == []

    def test_function_without_out_ignored(self):
        text = """
def kernel(x, buffer=None):
    return fresh(x)
"""
        assert check_out_contract(make_source(text)) == []

    def test_waiver_suppresses(self):
        text = """
def kernel(x, out=None):  # ra: out — returns a view by documented contract
    return fresh(x)
"""
        assert check_out_contract(make_source(text)) == []

    def test_nested_function_returns_not_credited(self):
        # The closure's `return out` belongs to the closure, not the
        # enclosing kernel.
        text = """
def kernel(x, out=None):
    def inner():
        return out
    return fresh(x)
"""
        assert len(check_out_contract(make_source(text))) == 1

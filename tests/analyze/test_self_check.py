"""The gate applied to this repo: ``repro analyze src`` stays clean.

This is the in-suite mirror of the CI ``analyze`` job — if it fails,
either new debt was introduced (fix it or waive it with a reasoned
``# ra:`` comment) or debt was paid down (shrink
``analysis/baseline.json``).
"""

from pathlib import Path

import pytest

from repro.analyze.baseline import load_baseline
from repro.analyze.engine import run_analysis

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def repo_cwd(monkeypatch):
    # Finding paths (and therefore baseline keys) are repo-relative;
    # run the scan from the root like CI does.
    monkeypatch.chdir(REPO_ROOT)


class TestSelfCheck:
    def test_src_clean_modulo_baseline(self, repo_cwd):
        report = run_analysis(["src"])
        assert report.parse_errors == []
        baseline = load_baseline(REPO_ROOT / "analysis" / "baseline.json")
        new, _stale = baseline.split(report.findings)
        assert new == [], "\n".join(f.render() for f in new)

    def test_baseline_has_no_stale_debt(self, repo_cwd):
        # The committed baseline must not carry entries that no longer
        # fire — debt only shrinks, and fixed debt leaves the file.
        report = run_analysis(["src"])
        baseline = load_baseline(REPO_ROOT / "analysis" / "baseline.json")
        _new, stale = baseline.split(report.findings)
        assert stale == []

    def test_scan_covers_the_package(self, repo_cwd):
        report = run_analysis(["src"])
        assert report.files_scanned > 50
        assert report.rules == (
            "RA01", "RA02", "RA03", "RA04", "RA05", "RA06", "RA07", "RA08",
            "RA09",
        )

"""Shared helpers for the analyzer tests: inline-source fixtures."""

import ast
from pathlib import Path

import pytest

from repro.analyze.engine import SourceFile
from repro.analyze.findings import parse_waivers


def make_source(text: str, rel: str = "pkg/mod.py") -> SourceFile:
    """Parse an inline snippet into the SourceFile the rules consume."""
    text = text.lstrip("\n")
    return SourceFile(
        path=Path(rel),
        rel=rel,
        text=text,
        tree=ast.parse(text),
        waivers=parse_waivers(text),
    )


@pytest.fixture
def source():
    return make_source

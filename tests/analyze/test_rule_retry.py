"""RA07 — retry loops re-raise typed errors; IntegrityError stays visible."""

from repro.analyze.rules_ast import check_retry_discipline

from tests.analyze.conftest import make_source


class TestIntegritySwallow:
    def test_swallowed_integrity_error_flagged(self):
        text = """
def load(path):
    try:
        return loads_matrix(path.read_bytes())
    except IntegrityError:
        return None
"""
        findings = check_retry_discipline(make_source(text))
        assert len(findings) == 1
        assert findings[0].rule == "RA07"
        assert findings[0].detail == "IntegrityError"
        assert findings[0].scope == "load"

    def test_integrity_error_in_tuple_flagged(self):
        text = """
def load(path):
    try:
        return loads_matrix(path.read_bytes())
    except (OSError, IntegrityError):
        return None
"""
        assert len(check_retry_discipline(make_source(text))) == 1

    def test_mapping_to_typed_error_is_clean(self):
        text = """
def load(path):
    try:
        return loads_matrix(path.read_bytes())
    except IntegrityError as exc:
        raise ShardUnavailableError(str(exc)) from exc
"""
        assert check_retry_discipline(make_source(text)) == []

    def test_bare_reraise_is_clean(self):
        text = """
def load(path):
    try:
        return loads_matrix(path.read_bytes())
    except IntegrityError:
        log()
        raise
"""
        assert check_retry_discipline(make_source(text)) == []

    def test_dotted_name_flagged(self):
        text = """
def load(path):
    try:
        return loads_matrix(path.read_bytes())
    except errors.IntegrityError:
        pass
"""
        assert len(check_retry_discipline(make_source(text))) == 1

    def test_waiver_suppresses(self):
        text = """
def probe(path):
    try:
        return loads_matrix(path.read_bytes())
    except IntegrityError:  # ra: retry — probe reports None, caller handles
        return None
"""
        assert check_retry_discipline(make_source(text)) == []


class TestRetryLoopSwallow:
    def test_while_loop_pass_flagged(self):
        text = """
def fetch():
    while True:
        try:
            return load()
        except OSError:
            pass
"""
        findings = check_retry_discipline(make_source(text))
        assert len(findings) == 1
        assert findings[0].detail == "OSError"

    def test_for_range_continue_flagged(self):
        text = """
def fetch():
    for attempt in range(3):
        try:
            return load()
        except ShardUnavailableError:
            continue
"""
        findings = check_retry_discipline(make_source(text))
        assert len(findings) == 1
        assert findings[0].detail == "ShardUnavailableError"

    def test_data_loop_continue_is_clean(self):
        # Skipping one *item* of a data loop is iteration, not a retry.
        text = """
def scan(paths):
    out = []
    for path in paths:
        try:
            out.append(load(path))
        except OSError:
            continue
    return out
"""
        assert check_retry_discipline(make_source(text)) == []

    def test_handler_with_real_body_is_clean(self):
        text = """
def fetch():
    for attempt in range(3):
        try:
            return load()
        except OSError as exc:
            last = exc
    raise last
"""
        assert check_retry_discipline(make_source(text)) == []

    def test_untyped_handler_left_to_ra04(self):
        # `except Exception: pass` in a loop is RA04's business.
        text = """
def fetch():
    while True:
        try:
            return load()
        except Exception:
            pass
"""
        assert check_retry_discipline(make_source(text)) == []

    def test_waiver_suppresses(self):
        text = """
def fetch():
    for attempt in range(3):
        try:
            return load()
        except OSError:  # ra: retry — best-effort warmup, cold path is fine
            continue
"""
        assert check_retry_discipline(make_source(text)) == []


class TestRegistration:
    def test_rule_registered_everywhere(self):
        from repro.analyze.engine import ALL_RULES
        from repro.analyze.findings import RULE_WAIVER_TAGS
        from repro.analyze.rules_ast import AST_RULES

        assert "RA07" in ALL_RULES
        assert AST_RULES["RA07"] is check_retry_discipline
        assert RULE_WAIVER_TAGS["RA07"] == "retry"

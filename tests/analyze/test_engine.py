"""File collection, rule selection, and whole-run behaviour on fixtures."""

import pytest

from repro.analyze.engine import (
    ALL_RULES,
    collect_files,
    resolve_rules,
    run_analysis,
)
from repro.errors import ReproError

BAD_LOCK = """import threading


class Guarded:
    def __init__(self):
        self._lock = threading.Lock()
        self._state = 0

    def bump(self):
        self._state += 1
"""

BAD_EXCEPT = """def handler():
    try:
        work()
    except Exception:
        return None
"""


class TestResolveRules:
    def test_default_is_all(self):
        assert resolve_rules() == ALL_RULES

    def test_select_filters(self):
        assert resolve_rules(select=["RA03", "RA05"]) == ("RA03", "RA05")

    def test_select_is_case_insensitive(self):
        assert resolve_rules(select=["ra04"]) == ("RA04",)

    def test_disable_drops(self):
        rules = resolve_rules(disable=["RA01", "RA02"])
        assert rules == ("RA03", "RA04", "RA05", "RA06", "RA07", "RA08", "RA09")

    def test_unknown_rule_raises(self):
        with pytest.raises(ReproError, match="unknown rule"):
            resolve_rules(select=["RA99"])
        with pytest.raises(ReproError, match="unknown rule"):
            resolve_rules(disable=["bogus"])


class TestCollectFiles:
    def test_walks_directories_sorted_and_deduped(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "a.py").write_text("y = 2\n")
        (tmp_path / "notes.txt").write_text("not python\n")
        files = collect_files([str(tmp_path), str(tmp_path / "b.py")])
        assert [f.name for f in files] == ["b.py", "a.py"]

    def test_skips_cache_dirs(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "stale.py").write_text("x = 1\n")
        assert collect_files([str(tmp_path)]) == []

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(ReproError, match="no such file"):
            collect_files([str(tmp_path / "gone")])


class TestRunAnalysis:
    def test_findings_on_seeded_fixtures(self, tmp_path):
        (tmp_path / "locky.py").write_text(BAD_LOCK)
        (tmp_path / "catchy.py").write_text(BAD_EXCEPT)
        report = run_analysis([str(tmp_path)])
        rules = sorted({f.rule for f in report.findings})
        assert rules == ["RA03", "RA04"]
        assert report.files_scanned == 2

    def test_registry_rules_skipped_off_package(self, tmp_path):
        # Scanning fixture snippets must not drag in live-registry
        # findings about the installed package.
        (tmp_path / "ok.py").write_text("x = 1\n")
        report = run_analysis([str(tmp_path)], select=["RA01", "RA02"])
        assert report.findings == []

    def test_disable_suppresses_rule(self, tmp_path):
        (tmp_path / "locky.py").write_text(BAD_LOCK)
        report = run_analysis([str(tmp_path)], disable=["RA03"])
        assert report.findings == []

    def test_parse_error_reported_not_raised(self, tmp_path):
        (tmp_path / "broken.py").write_text("def oops(:\n")
        report = run_analysis([str(tmp_path)])
        assert len(report.parse_errors) == 1
        assert report.files_scanned == 0

    def test_findings_sorted(self, tmp_path):
        (tmp_path / "b.py").write_text(BAD_EXCEPT)
        (tmp_path / "a.py").write_text(BAD_EXCEPT)
        report = run_analysis([str(tmp_path)])
        paths = [f.path for f in report.findings]
        assert paths == sorted(paths)

"""RA03 — writes to guarded attributes must hold ``self._lock``."""

from repro.analyze.rules_ast import check_lock_discipline

from tests.analyze.conftest import make_source

LOCKED_CLASS = """
import threading

class Guarded:
    def __init__(self):
        self._lock = threading.Lock()
        self._state = 0

    def bump(self):
        with self._lock:
            self._state += 1
"""

UNLOCKED_WRITE = """
import threading

class Guarded:
    def __init__(self):
        self._lock = threading.Lock()
        self._state = 0

    def bump(self):
        self._state += 1
"""


class TestLockDiscipline:
    def test_write_under_lock_is_clean(self):
        assert check_lock_discipline(make_source(LOCKED_CLASS)) == []

    def test_unlocked_write_flagged(self):
        findings = check_lock_discipline(make_source(UNLOCKED_WRITE))
        assert len(findings) == 1
        f = findings[0]
        assert f.rule == "RA03"
        assert f.scope == "Guarded.bump"
        assert f.detail == "_state"

    def test_init_writes_exempt(self):
        # __init__ runs before the object is shared; its bare writes
        # (including creating the lock itself) are the normal pattern.
        src = make_source(LOCKED_CLASS)
        assert check_lock_discipline(src) == []

    def test_locked_suffix_methods_exempt(self):
        text = """
import threading

class Guarded:
    def __init__(self):
        self._lock = threading.Lock()
        self._state = 0

    def _bump_locked(self):
        self._state += 1
"""
        assert check_lock_discipline(make_source(text)) == []

    def test_waiver_suppresses(self):
        text = """
import threading

class Guarded:
    def __init__(self):
        self._lock = threading.Lock()
        self._state = 0

    def bump(self):
        self._state += 1  # ra: unlocked — single-threaded setup phase
"""
        assert check_lock_discipline(make_source(text)) == []

    def test_class_without_lock_ignored(self):
        text = """
class Plain:
    def __init__(self):
        self._state = 0

    def bump(self):
        self._state += 1
"""
        assert check_lock_discipline(make_source(text)) == []

    def test_public_and_dunder_attrs_ignored(self):
        text = """
import threading

class Guarded:
    def __init__(self):
        self._lock = threading.Lock()

    def bump(self):
        self.count = 1
        self.__mangled = 2
"""
        assert check_lock_discipline(make_source(text)) == []

    def test_tuple_and_augmented_targets(self):
        text = """
import threading

class Guarded:
    def __init__(self):
        self._lock = threading.Lock()

    def bump(self):
        self._a, self._b = 1, 2
"""
        findings = check_lock_discipline(make_source(text))
        assert sorted(f.detail for f in findings) == ["_a", "_b"]

    def test_nested_function_writes_not_attributed(self):
        # A closure runs later (often on another thread); RA03 only
        # reasons about the method's own control flow.
        text = """
import threading

class Guarded:
    def __init__(self):
        self._lock = threading.Lock()

    def bump(self):
        with self._lock:
            def task():
                self._state = 1
            return task
"""
        assert check_lock_discipline(make_source(text)) == []

    def test_seeded_violation_matches_fixed_shard_matrix(self):
        # Regression fixture mirroring the bug RA03 caught in
        # LazyShardedMatrix.enable_plan_retention before it was fixed.
        text = """
import threading

class LazyContainer:
    def __init__(self):
        self._lock = threading.RLock()
        self._retain_plans = True

    def enable_plan_retention(self, retain=True):
        self._retain_plans = bool(retain)
        return True
"""
        findings = check_lock_discipline(make_source(text))
        assert [f.detail for f in findings] == ["_retain_plans"]
        fixed = text.replace(
            "        self._retain_plans = bool(retain)\n        return True",
            "        with self._lock:\n"
            "            self._retain_plans = bool(retain)\n"
            "        return True",
        )
        assert check_lock_discipline(make_source(fixed)) == []

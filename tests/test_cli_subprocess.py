"""Subprocess round-trips of the full CLI surface.

The in-process CLI tests (:mod:`tests.test_cli`) call ``main(argv)``
directly, which misses the real entry point: ``python -m repro`` in a
fresh interpreter, exit codes as the shell sees them, and files written
where the invocation says.  These tests drive the whole surface —
``datasets → compress → info → multiply → decompress`` plus the
``shard`` pipeline — as subprocesses against a tmp dir, asserting exit
codes and numeric parity with the dense source.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from tests.conftest import make_structured

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")


def run_cli(*argv: str, cwd=None):
    """``python -m repro *argv`` with src on PYTHONPATH; returns the proc."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
        timeout=300,
    )


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    """A tmp dir with a dense source matrix and its .npy operands."""
    root = tmp_path_factory.mktemp("cli_store")
    rng = np.random.default_rng(321)
    dense = make_structured(rng, n=90, m=11)
    np.save(root / "dense.npy", dense)
    np.save(root / "x.npy", np.ones(dense.shape[1]))
    np.save(root / "y.npy", np.ones(dense.shape[0]))
    return root, dense


class TestHappyPath:
    def test_datasets_lists(self):
        proc = run_cli("datasets")
        assert proc.returncode == 0, proc.stderr
        assert "census" in proc.stdout

    def test_compress_info_multiply_decompress(self, store):
        root, dense = store
        blob = root / "m.gcmx"
        proc = run_cli("compress", str(root / "dense.npy"), str(blob),
                       "--format", "re_ans")
        assert proc.returncode == 0, proc.stderr
        assert "% of dense" in proc.stdout
        assert blob.exists()

        proc = run_cli("info", str(blob))
        assert proc.returncode == 0, proc.stderr
        assert "re_ans" in proc.stdout
        assert "90 x 11" in proc.stdout

        out = root / "yy.npy"
        proc = run_cli("multiply", str(blob), str(root / "x.npy"),
                       "--output", str(out))
        assert proc.returncode == 0, proc.stderr
        assert np.allclose(np.load(out), dense @ np.ones(dense.shape[1]))

        proc = run_cli("multiply", str(blob), str(root / "y.npy"), "--left",
                       "--output", str(root / "xt.npy"))
        assert proc.returncode == 0, proc.stderr
        assert np.allclose(
            np.load(root / "xt.npy"), np.ones(dense.shape[0]) @ dense
        )

        back = root / "back.npy"
        proc = run_cli("decompress", str(blob), str(back))
        assert proc.returncode == 0, proc.stderr
        assert np.array_equal(np.load(back), dense)

    def test_shard_pipeline(self, store):
        root, dense = store
        blob = root / "sharded.gcmx"
        proc = run_cli("shard", str(root / "dense.npy"), str(blob),
                       "--shards", "3", "--workers", "2")
        assert proc.returncode == 0, proc.stderr
        assert "3 shards" in proc.stdout
        assert blob.exists()

        proc = run_cli("info", str(blob))
        assert proc.returncode == 0, proc.stderr
        assert "sharded" in proc.stdout
        assert "shards  : 3" in proc.stdout

        out = root / "sy.npy"
        proc = run_cli("multiply", str(blob), str(root / "x.npy"),
                       "--workers", "2", "--output", str(out))
        assert proc.returncode == 0, proc.stderr
        assert np.allclose(np.load(out), dense @ np.ones(dense.shape[1]))

        back = root / "sback.npy"
        proc = run_cli("decompress", str(blob), str(back))
        assert proc.returncode == 0, proc.stderr
        assert np.array_equal(np.load(back), dense)

    def test_shard_explicit_format(self, store):
        root, dense = store
        blob = root / "sharded_csrv.gcmx"
        proc = run_cli("shard", str(root / "dense.npy"), str(blob),
                       "--target-rows", "30", "--format", "csrv")
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.count("csrv") >= 3


class TestExitCodes:
    def test_unknown_command_exits_2(self):
        assert run_cli("frobnicate").returncode == 2

    def test_shard_sizing_conflict_exits_2(self, store):
        root, _ = store
        proc = run_cli("shard", str(root / "dense.npy"),
                       str(root / "o.gcmx"), "--shards", "2",
                       "--target-rows", "5")
        assert proc.returncode == 2  # argparse mutually-exclusive group

    def test_shard_too_many_shards_exits_1(self, store):
        root, _ = store
        proc = run_cli("shard", str(root / "dense.npy"),
                       str(root / "o.gcmx"), "--shards", "100000")
        assert proc.returncode == 1
        assert "n_shards" in proc.stderr

    def test_missing_input_fails(self, store):
        root, _ = store
        proc = run_cli("info", str(root / "nope.gcmx"))
        assert proc.returncode != 0

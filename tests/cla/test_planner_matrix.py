"""Tests for the CLA planner and CLAMatrix."""

import numpy as np
import pytest

from repro.cla.matrix import CLAMatrix
from repro.cla.planner import plan_column_groups
from repro.errors import MatrixFormatError, PlanningError
from tests.conftest import make_structured


class TestPlanner:
    def test_covers_all_columns_exactly_once(self, rng):
        matrix = make_structured(rng, n=200, m=10)
        plans = plan_column_groups(matrix)
        covered = sorted(c for p in plans for c in p.columns)
        assert covered == list(range(10))

    def test_correlated_columns_co_coded(self, rng):
        # Columns 0 and 1 are identical: merging them halves the size.
        base = rng.choice([1.0, 2.0, 3.0], size=400)
        matrix = np.column_stack([base, base, rng.standard_normal(400)])
        plans = plan_column_groups(matrix)
        joint = [p for p in plans if {0, 1} <= set(p.columns)]
        assert joint, f"expected columns 0,1 co-coded, got {plans}"

    def test_independent_high_cardinality_columns_stay_alone(self, rng):
        matrix = rng.standard_normal((300, 4))
        plans = plan_column_groups(matrix)
        assert all(len(p.columns) == 1 for p in plans)

    def test_max_group_size_respected(self, rng):
        base = rng.choice([1.0, 2.0], size=300)
        matrix = np.column_stack([base] * 12)
        plans = plan_column_groups(matrix, max_group_size=4)
        assert all(len(p.columns) <= 4 for p in plans)

    def test_deterministic(self, rng):
        matrix = make_structured(rng, n=300, m=8)
        a = plan_column_groups(matrix, seed=3)
        b = plan_column_groups(matrix, seed=3)
        assert [p.columns for p in a] == [p.columns for p in b]

    def test_empty_matrix_rejected(self):
        with pytest.raises(PlanningError):
            plan_column_groups(np.zeros((0, 3)))
        with pytest.raises(PlanningError):
            plan_column_groups(np.ones(5))


class TestCLAMatrix:
    def test_lossless(self, rng):
        matrix = make_structured(rng, n=150, m=9)
        cla = CLAMatrix.compress(matrix)
        assert np.array_equal(cla.to_dense(), matrix)

    def test_right_multiply(self, rng):
        matrix = make_structured(rng, n=150, m=9)
        cla = CLAMatrix.compress(matrix)
        x = rng.standard_normal(9)
        assert np.allclose(cla.right_multiply(x), matrix @ x)

    def test_left_multiply(self, rng):
        matrix = make_structured(rng, n=150, m=9)
        cla = CLAMatrix.compress(matrix)
        y = rng.standard_normal(150)
        assert np.allclose(cla.left_multiply(y), y @ matrix)

    @pytest.mark.parametrize("threads", [2, 4])
    def test_threaded_multiplication(self, rng, threads):
        matrix = make_structured(rng, n=200, m=12)
        cla = CLAMatrix.compress(matrix)
        x = rng.standard_normal(12)
        y = rng.standard_normal(200)
        assert np.allclose(cla.right_multiply(x, threads=threads), matrix @ x)
        assert np.allclose(cla.left_multiply(y, threads=threads), y @ matrix)

    def test_compresses_structured_input(self, rng):
        matrix = make_structured(rng, n=2000, m=10, pool=3)
        cla = CLAMatrix.compress(matrix)
        assert cla.size_bytes() < matrix.size * 8 / 3

    def test_random_input_falls_back_to_uc(self, rng):
        matrix = rng.standard_normal((500, 4))
        cla = CLAMatrix.compress(matrix)
        assert cla.format_summary().get("UC", 0) >= 1
        # No worse than ~dense.
        assert cla.size_bytes() <= matrix.size * 8 * 1.05

    def test_format_summary_counts_groups(self, rng):
        matrix = make_structured(rng, n=100, m=6)
        cla = CLAMatrix.compress(matrix)
        assert sum(cla.format_summary().values()) == len(cla.groups)

    def test_wrong_vector_lengths(self, rng):
        matrix = make_structured(rng, n=50, m=5)
        cla = CLAMatrix.compress(matrix)
        with pytest.raises(MatrixFormatError):
            cla.right_multiply(np.ones(4))
        with pytest.raises(MatrixFormatError):
            cla.left_multiply(np.ones(4))

    def test_group_coverage_validated(self, rng):
        matrix = make_structured(rng, n=50, m=5)
        cla = CLAMatrix.compress(matrix)
        with pytest.raises(MatrixFormatError):
            CLAMatrix(cla.groups[:-1], matrix.shape)

    def test_one_hot_matrix(self, rng):
        # Covtype-like one-hot indicators: OLE/RLE territory.
        labels = rng.integers(0, 6, size=400)
        matrix = np.eye(6)[labels]
        cla = CLAMatrix.compress(matrix)
        assert np.array_equal(cla.to_dense(), matrix)
        assert cla.size_bytes() < matrix.size * 8 / 4

"""Tests for the CLA column-group formats."""

import numpy as np
import pytest

from repro.cla.colgroup import (
    GROUP_FORMATS,
    ColumnGroupDDC,
    ColumnGroupOLE,
    ColumnGroupRLE,
    ColumnGroupUC,
)
from repro.errors import MatrixFormatError
from tests.conftest import make_structured


@pytest.fixture(params=list(GROUP_FORMATS), ids=lambda f: f.format_name)
def group_format(request):
    return request.param


@pytest.fixture
def matrix(rng):
    return make_structured(rng, n=80, m=6, density=0.5, pool=4)


class TestEncodingRoundtrip:
    def test_dense_block_roundtrip(self, matrix, group_format):
        group = group_format.from_dense(matrix, [1, 3, 4])
        assert np.array_equal(group.to_dense_block(), matrix[:, [1, 3, 4]])

    def test_single_column(self, matrix, group_format):
        group = group_format.from_dense(matrix, [0])
        assert np.array_equal(group.to_dense_block().ravel(), matrix[:, 0])

    def test_all_zero_columns(self, group_format):
        matrix = np.zeros((30, 3))
        group = group_format.from_dense(matrix, [0, 2])
        assert np.array_equal(group.to_dense_block(), matrix[:, [0, 2]])

    def test_empty_columns_rejected(self, matrix, group_format):
        with pytest.raises(MatrixFormatError):
            group_format.from_dense(matrix, [])


class TestMultiplication:
    def test_right_contribution(self, matrix, group_format, rng):
        cols = [0, 2, 5]
        group = group_format.from_dense(matrix, cols)
        x = rng.standard_normal(matrix.shape[1])
        y = np.zeros(matrix.shape[0])
        group.right_mvm(x, y)
        assert np.allclose(y, matrix[:, cols] @ x[cols])

    def test_left_contribution(self, matrix, group_format, rng):
        cols = [1, 4]
        group = group_format.from_dense(matrix, cols)
        y = rng.standard_normal(matrix.shape[0])
        x = np.zeros(matrix.shape[1])
        group.left_mvm(y, x)
        expected = np.zeros(matrix.shape[1])
        expected[cols] = y @ matrix[:, cols]
        assert np.allclose(x, expected)

    def test_accumulation_into_existing_output(self, matrix, group_format):
        group = group_format.from_dense(matrix, [0])
        x = np.ones(matrix.shape[1])
        y = np.full(matrix.shape[0], 10.0)
        group.right_mvm(x, y)
        assert np.allclose(y, 10.0 + matrix[:, 0])

    def test_all_formats_agree(self, matrix, rng):
        cols = [0, 1, 2]
        x = rng.standard_normal(matrix.shape[1])
        outputs = []
        for fmt in GROUP_FORMATS:
            y = np.zeros(matrix.shape[0])
            fmt.from_dense(matrix, cols).right_mvm(x, y)
            outputs.append(y)
        for out in outputs[1:]:
            assert np.allclose(out, outputs[0])


class TestFormatSpecificBehaviour:
    def test_ddc_code_width_grows_with_dictionary(self):
        # <=256 distinct tuples -> 1-byte codes.
        small = ColumnGroupDDC.from_dense(
            np.arange(100, dtype=np.float64).reshape(-1, 1) % 7, [0]
        )
        assert small.size_bytes() == 8 * 7 + 1 * 100

    def test_ole_skips_zero_tuple(self):
        matrix = np.zeros((100, 1))
        matrix[:5, 0] = 3.0
        group = ColumnGroupOLE.from_dense(matrix, [0])
        # Only the 5 non-zero rows are stored.
        assert group.rows_concat.size == 5

    def test_rle_run_detection(self):
        column = np.array([5.0] * 50 + [0.0] * 30 + [5.0] * 20).reshape(-1, 1)
        group = ColumnGroupRLE.from_dense(column, [0])
        # Two non-zero runs.
        assert group.run_starts.size == 2
        assert group.run_ends.tolist() == [50, 100]

    def test_rle_wins_on_sorted_data(self):
        column = np.repeat([1.0, 2.0, 3.0, 4.0], 250).reshape(-1, 1)
        sizes = {
            fmt.format_name: fmt.from_dense(column, [0]).size_bytes()
            for fmt in GROUP_FORMATS
        }
        assert sizes["RLE"] == min(sizes.values())

    def test_ole_wins_on_sparse_scattered_data(self, rng):
        column = np.zeros((3000, 1))
        hits = rng.choice(3000, size=90, replace=False)
        column[hits, 0] = 7.0
        sizes = {
            fmt.format_name: fmt.from_dense(column, [0]).size_bytes()
            for fmt in GROUP_FORMATS
        }
        assert sizes["OLE"] == min(sizes.values())

    def test_ddc_wins_on_dense_low_cardinality(self, rng):
        column = rng.choice([1.5, 2.5, 3.5], size=(2000, 1))
        sizes = {
            fmt.format_name: fmt.from_dense(column, [0]).size_bytes()
            for fmt in GROUP_FORMATS
        }
        assert sizes["DDC"] <= sizes["UC"]
        assert sizes["DDC"] <= sizes["OLE"]

    def test_uc_size_is_raw_bytes(self, matrix):
        group = ColumnGroupUC.from_dense(matrix, [0, 1])
        assert group.size_bytes() == 8 * matrix.shape[0] * 2

"""Tests for the gzip/xz whole-file baselines."""

import numpy as np
import pytest

from repro.baselines.dense import DenseMatrix
from repro.baselines.gzip_xz import GzipMatrix, XzMatrix
from repro.errors import MatrixFormatError


@pytest.fixture(params=[GzipMatrix, XzMatrix])
def codec(request):
    return request.param


class TestRoundtrip:
    def test_lossless(self, structured_matrix, codec):
        cm = codec(structured_matrix)
        assert np.array_equal(cm.to_dense(), structured_matrix)

    def test_multiplication_via_full_decompression(self, structured_matrix, codec, rng):
        cm = codec(structured_matrix)
        x = rng.standard_normal(structured_matrix.shape[1])
        y = rng.standard_normal(structured_matrix.shape[0])
        assert np.allclose(cm.right_multiply(x), structured_matrix @ x)
        assert np.allclose(cm.left_multiply(y), y @ structured_matrix)

    def test_rejects_1d(self, codec):
        with pytest.raises(MatrixFormatError):
            codec(np.ones(4))


class TestCompression:
    def test_compresses_repetitive_matrix(self, codec):
        matrix = np.tile(np.array([[1.0, 2.0, 3.0]]), (200, 1))
        cm = codec(matrix)
        assert cm.size_bytes() < DenseMatrix(matrix).size_bytes() / 10

    def test_random_data_barely_compresses(self, codec, rng):
        matrix = rng.standard_normal((100, 20))
        cm = codec(matrix)
        assert cm.size_bytes() > 0.8 * DenseMatrix(matrix).size_bytes()

    def test_xz_at_least_as_good_as_gzip_on_structured_input(self, structured_matrix):
        # Table 1: xz consistently beats gzip.
        big = np.tile(structured_matrix, (10, 1))
        assert XzMatrix(big).size_bytes() <= GzipMatrix(big).size_bytes()

    def test_repr(self, paper_matrix, codec):
        assert "bytes=" in repr(codec(paper_matrix))

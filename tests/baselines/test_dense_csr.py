"""Tests for the dense, CSR and CSR-IV baselines."""

import numpy as np
import pytest

from repro.baselines.csr import CSRIVMatrix, CSRMatrix
from repro.baselines.dense import DenseMatrix
from repro.errors import MatrixFormatError


class TestDense:
    def test_size_is_paper_denominator(self, paper_matrix):
        assert DenseMatrix(paper_matrix).size_bytes() == 6 * 5 * 8

    def test_right_multiply(self, structured_matrix, rng):
        dm = DenseMatrix(structured_matrix)
        x = rng.standard_normal(structured_matrix.shape[1])
        assert np.allclose(dm.right_multiply(x), structured_matrix @ x)

    def test_left_multiply(self, structured_matrix, rng):
        dm = DenseMatrix(structured_matrix)
        y = rng.standard_normal(structured_matrix.shape[0])
        assert np.allclose(dm.left_multiply(y), y @ structured_matrix)

    def test_to_dense_returns_copy(self, paper_matrix):
        dm = DenseMatrix(paper_matrix)
        out = dm.to_dense()
        out[0, 0] = 99.0
        assert dm.to_dense()[0, 0] == 1.2

    def test_rejects_1d(self):
        with pytest.raises(MatrixFormatError):
            DenseMatrix(np.ones(3))

    def test_wrong_vector_lengths(self, paper_matrix):
        dm = DenseMatrix(paper_matrix)
        with pytest.raises(MatrixFormatError):
            dm.right_multiply(np.ones(2))
        with pytest.raises(MatrixFormatError):
            dm.left_multiply(np.ones(2))


class TestCSR:
    def test_size_formula(self, paper_matrix):
        csr = CSRMatrix(paper_matrix)
        assert csr.size_bytes() == 12 * csr.nnz + 4 * 7

    def test_multiplication(self, structured_matrix, rng):
        csr = CSRMatrix(structured_matrix)
        x = rng.standard_normal(structured_matrix.shape[1])
        y = rng.standard_normal(structured_matrix.shape[0])
        assert np.allclose(csr.right_multiply(x), structured_matrix @ x)
        assert np.allclose(csr.left_multiply(y), y @ structured_matrix)

    def test_csr_exceeds_dense_on_near_dense_input(self):
        # The paper's observation for Susy/Higgs/Optical: 12 bytes per
        # non-zero beats 8 bytes per cell only below 2/3 density.
        matrix = np.ones((50, 10))
        assert CSRMatrix(matrix).size_bytes() > DenseMatrix(matrix).size_bytes()

    def test_csr_wins_on_sparse_input(self):
        matrix = np.zeros((100, 100))
        matrix[::10, ::10] = 1.0
        assert CSRMatrix(matrix).size_bytes() < DenseMatrix(matrix).size_bytes()

    def test_roundtrip(self, structured_matrix):
        assert np.array_equal(
            CSRMatrix(structured_matrix).to_dense(), structured_matrix
        )


class TestCSRIV:
    def test_distinct_count(self, paper_matrix):
        assert CSRIVMatrix(paper_matrix).n_distinct == 6

    def test_size_uses_2byte_indices_for_small_dictionaries(self, paper_matrix):
        iv = CSRIVMatrix(paper_matrix)
        nnz, n = iv.nnz, 6
        assert iv.size_bytes() == 2 * nnz + 4 * nnz + 4 * (n + 1) + 8 * 6

    def test_size_uses_4byte_indices_for_large_dictionaries(self, rng):
        # > 2^16 distinct values forces 4-byte indices.
        values = np.arange(1, 70_000, dtype=np.float64)
        matrix = values.reshape(1, -1)
        iv = CSRIVMatrix(matrix)
        assert iv.n_distinct >= 1 << 16
        assert iv.size_bytes() >= 4 * iv.nnz + 4 * iv.nnz

    def test_csriv_beats_csr_with_few_distinct(self, structured_matrix):
        assert (
            CSRIVMatrix(structured_matrix).size_bytes()
            < CSRMatrix(structured_matrix).size_bytes()
        )

    def test_multiplication(self, structured_matrix, rng):
        iv = CSRIVMatrix(structured_matrix)
        x = rng.standard_normal(structured_matrix.shape[1])
        assert np.allclose(iv.right_multiply(x), structured_matrix @ x)

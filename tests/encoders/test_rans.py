"""Tests for the large-alphabet rANS coder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entropy import empirical_entropy
from repro.encoders.rans import (
    RansDecoder,
    RansEncoder,
    ans_compress,
    ans_decompress,
    normalize_frequencies,
)
from repro.errors import EncodingError


class TestNormalizeFrequencies:
    def test_sums_to_scale(self):
        freqs = normalize_frequencies(np.array([5, 3, 2]), scale_bits=12)
        assert freqs.sum() == 1 << 12

    def test_every_symbol_kept(self):
        # A very rare symbol must still get frequency >= 1.
        counts = np.array([1, 10_000_000])
        freqs = normalize_frequencies(counts, scale_bits=8)
        assert freqs[0] >= 1
        assert freqs.sum() == 256

    def test_proportions_preserved(self):
        freqs = normalize_frequencies(np.array([1, 1, 2]), scale_bits=12)
        assert freqs[2] == pytest.approx(2 * freqs[0], rel=0.01)

    def test_single_symbol(self):
        freqs = normalize_frequencies(np.array([42]), scale_bits=12)
        assert freqs.tolist() == [1 << 12]

    def test_alphabet_too_large(self):
        with pytest.raises(EncodingError):
            normalize_frequencies(np.ones(300, dtype=int), scale_bits=8)

    def test_zero_count_rejected(self):
        with pytest.raises(EncodingError):
            normalize_frequencies(np.array([3, 0]), scale_bits=12)

    def test_empty(self):
        assert normalize_frequencies(np.array([], dtype=int), 12).size == 0


class TestRansCore:
    def test_encode_decode_roundtrip(self):
        rng = np.random.default_rng(0)
        freqs = normalize_frequencies(np.array([50, 30, 15, 5]), 12)
        symbols = rng.integers(0, 4, size=500)
        enc = RansEncoder(freqs, 12)
        dec = RansDecoder(freqs, 12)
        assert np.array_equal(dec.decode(enc.encode(symbols), 500), symbols)

    def test_single_symbol_stream_is_tiny(self):
        freqs = normalize_frequencies(np.array([100]), 12)
        blob = RansEncoder(freqs, 12).encode(np.zeros(10_000, dtype=int))
        # Zero entropy: only the 4-byte final state is emitted.
        assert len(blob) == 4
        out = RansDecoder(freqs, 12).decode(blob, 10_000)
        assert np.array_equal(out, np.zeros(10_000))

    def test_wrong_frequency_sum_rejected(self):
        with pytest.raises(EncodingError):
            RansEncoder(np.array([10, 10]), scale_bits=12)

    def test_truncated_stream_detected(self):
        freqs = normalize_frequencies(np.array([1, 1]), 12)
        rng = np.random.default_rng(1)
        blob = RansEncoder(freqs, 12).encode(rng.integers(0, 2, size=1000))
        with pytest.raises(EncodingError):
            RansDecoder(freqs, 12).decode(blob[:3], 1000)

    def test_decode_zero_symbols(self):
        freqs = normalize_frequencies(np.array([1, 1]), 12)
        assert RansDecoder(freqs, 12).decode(b"", 0).size == 0


class TestAnsBlob:
    def test_roundtrip(self):
        rng = np.random.default_rng(2)
        values = rng.integers(0, 50, size=2000)
        assert np.array_equal(ans_decompress(ans_compress(values)), values)

    def test_large_sparse_alphabet(self):
        # Symbol ids far apart (like RePair nonterminals).
        rng = np.random.default_rng(3)
        alphabet = np.sort(rng.choice(1 << 30, size=200, replace=False))
        values = alphabet[rng.integers(0, 200, size=3000)]
        assert np.array_equal(ans_decompress(ans_compress(values)), values)

    def test_empty(self):
        assert ans_decompress(ans_compress(np.array([], dtype=int))).size == 0

    def test_single_value(self):
        values = np.array([7])
        assert np.array_equal(ans_decompress(ans_compress(values)), values)

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            ans_compress(np.array([-1, 2]))

    def test_scale_bits_auto_raised(self):
        # 5000 distinct symbols cannot fit into 2^12 slots; the coder
        # must raise the quantisation transparently.
        values = np.arange(5000)
        assert np.array_equal(ans_decompress(ans_compress(values)), values)

    def test_compression_tracks_entropy(self):
        # A skewed stream must compress close to its H_0; allow coder +
        # header overhead.
        rng = np.random.default_rng(4)
        values = rng.choice(8, size=20_000, p=[0.6, 0.2, 0.1, 0.04, 0.03, 0.01, 0.01, 0.01])
        blob = ans_compress(values)
        payload_bits = 8 * len(blob)
        entropy_bits = values.size * empirical_entropy(values)
        assert payload_bits < 1.10 * entropy_bits + 8 * 200

    def test_beats_fixed_width_on_skewed_data(self):
        rng = np.random.default_rng(5)
        values = rng.choice(256, size=10_000, p=_skewed(256))
        blob = ans_compress(values)
        assert len(blob) < 10_000  # < 1 byte/symbol despite 8-bit alphabet


def _skewed(k):
    p = 1.0 / np.arange(1, k + 1) ** 2
    return p / p.sum()


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.integers(min_value=0, max_value=100_000), min_size=0, max_size=400
    )
)
def test_property_blob_roundtrip(values):
    arr = np.asarray(values, dtype=np.int64)
    assert np.array_equal(ans_decompress(ans_compress(arr)), arr)

"""Tests for the bit-packed IntVector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoders.int_vector import IntVector, bits_required
from repro.errors import EncodingError


class TestBitsRequired:
    def test_zero_needs_one_bit(self):
        assert bits_required(0) == 1

    def test_one_needs_one_bit(self):
        assert bits_required(1) == 1

    def test_powers_of_two(self):
        assert bits_required(2) == 2
        assert bits_required(3) == 2
        assert bits_required(4) == 3
        assert bits_required(255) == 8
        assert bits_required(256) == 9

    def test_matches_paper_width_rule(self):
        # The paper uses w = 1 + floor(log2(N_max)).
        for n_max in (1, 5, 100, 65_535, 1 << 30):
            assert bits_required(n_max) == 1 + int(np.floor(np.log2(n_max)))

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            bits_required(-1)


class TestIntVectorBasics:
    def test_roundtrip_small(self):
        iv = IntVector([3, 0, 7, 5])
        assert list(iv) == [3, 0, 7, 5]

    def test_len(self):
        assert len(IntVector([1, 2, 3])) == 3

    def test_empty(self):
        iv = IntVector([])
        assert len(iv) == 0
        assert iv.to_numpy().size == 0

    def test_minimum_width_chosen(self):
        assert IntVector([0, 1]).width == 1
        assert IntVector([7]).width == 3
        assert IntVector([8]).width == 4

    def test_explicit_width(self):
        iv = IntVector([1, 2, 3], width=16)
        assert iv.width == 16
        assert list(iv) == [1, 2, 3]

    def test_value_too_large_for_width(self):
        with pytest.raises(EncodingError):
            IntVector([16], width=4)

    def test_width_out_of_range(self):
        with pytest.raises(EncodingError):
            IntVector([1], width=0)
        with pytest.raises(EncodingError):
            IntVector([1], width=65)

    def test_non_integer_rejected(self):
        with pytest.raises(EncodingError):
            IntVector(np.array([1.5, 2.5]))

    def test_random_access(self):
        data = [5, 9, 0, 1023, 512]
        iv = IntVector(data)
        for i, v in enumerate(data):
            assert iv[i] == v

    def test_negative_index(self):
        iv = IntVector([10, 20, 30])
        assert iv[-1] == 30
        assert iv[-3] == 10

    def test_index_out_of_range(self):
        iv = IntVector([1, 2])
        with pytest.raises(IndexError):
            iv[2]
        with pytest.raises(IndexError):
            iv[-3]

    def test_slice_returns_array(self):
        iv = IntVector([1, 2, 3, 4])
        assert np.array_equal(iv[1:3], [2, 3])

    def test_equality(self):
        assert IntVector([1, 2, 3]) == IntVector([1, 2, 3])
        assert IntVector([1, 2, 3]) != IntVector([1, 2, 4])
        assert IntVector([1], width=2) != IntVector([1], width=3)

    def test_repr(self):
        assert "width=3" in repr(IntVector([7]))


class TestIntVectorPacking:
    def test_word_straddling_entries(self):
        # width 20: entries straddle 64-bit word boundaries from index 3 on.
        data = [(1 << 20) - 1 - i for i in range(40)]
        iv = IntVector(data, width=20)
        assert iv.to_numpy().tolist() == data

    def test_width_64(self):
        data = [0, (1 << 64) - 1, 12345678901234567890]
        iv = IntVector(np.array(data, dtype=np.uint64), width=64)
        assert [int(v) for v in iv.to_numpy(dtype=np.uint64)] == data

    def test_packed_smaller_than_plain(self):
        # 10-bit entries: packed must be ~10/32 of a 32-bit layout.
        n = 1000
        iv = IntVector(np.arange(n) % 1024, width=10)
        assert iv.size_bytes() < 4 * n // 2

    def test_size_bytes_counts_words_and_header(self):
        iv = IntVector([1] * 64, width=1)  # exactly one word
        assert iv.size_bytes() == 8 + IntVector.HEADER_BYTES


class TestIntVectorSerialization:
    def test_bytes_roundtrip(self):
        iv = IntVector([9, 8, 7, 1000], width=12)
        back = IntVector.from_bytes(iv.to_bytes())
        assert back == iv

    def test_truncated_header_rejected(self):
        with pytest.raises(EncodingError):
            IntVector.from_bytes(b"\x01\x02")

    def test_truncated_payload_rejected(self):
        blob = IntVector([1] * 100, width=7).to_bytes()
        with pytest.raises(EncodingError):
            IntVector.from_bytes(blob[:-4])


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(st.integers(min_value=0, max_value=(1 << 40) - 1), max_size=200)
)
def test_property_roundtrip(values):
    iv = IntVector(values)
    assert iv.to_numpy(dtype=np.uint64).tolist() == values
    assert IntVector.from_bytes(iv.to_bytes()) == iv


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=64),
    extra_width=st.integers(min_value=0, max_value=10),
)
def test_property_any_sufficient_width(values, extra_width):
    width = max(int(v).bit_length() for v in values) or 1
    iv = IntVector(values, width=width + extra_width)
    assert iv.to_numpy().tolist() == values

"""Tests for LEB128 varints."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.encoders.varint import decode_uvarint, encode_uvarint
from repro.errors import EncodingError


class TestEncode:
    def test_zero(self):
        assert encode_uvarint(0) == b"\x00"

    def test_single_byte_boundary(self):
        assert encode_uvarint(127) == b"\x7f"
        assert encode_uvarint(128) == b"\x80\x01"

    def test_known_value(self):
        assert encode_uvarint(300) == b"\xac\x02"

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            encode_uvarint(-1)


class TestDecode:
    def test_known_value(self):
        assert decode_uvarint(b"\xac\x02") == (300, 2)

    def test_offset(self):
        data = b"\xff" + encode_uvarint(5)
        assert decode_uvarint(data, offset=1) == (5, 2)

    def test_truncated(self):
        with pytest.raises(EncodingError):
            decode_uvarint(b"\x80")

    def test_empty(self):
        with pytest.raises(EncodingError):
            decode_uvarint(b"")

    def test_overlong_rejected(self):
        with pytest.raises(EncodingError):
            decode_uvarint(b"\x80" * 11 + b"\x01")

    def test_sequence_of_varints(self):
        data = encode_uvarint(1) + encode_uvarint(1000) + encode_uvarint(0)
        v1, p = decode_uvarint(data)
        v2, p = decode_uvarint(data, p)
        v3, p = decode_uvarint(data, p)
        assert (v1, v2, v3) == (1, 1000, 0)
        assert p == len(data)


@given(st.integers(min_value=0, max_value=(1 << 63) - 1))
def test_property_roundtrip(value):
    encoded = encode_uvarint(value)
    decoded, consumed = decode_uvarint(encoded)
    assert decoded == value
    assert consumed == len(encoded)


@given(st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_property_length_monotone(value):
    # Longer values never encode shorter than smaller values of the
    # same byte class.
    assert len(encode_uvarint(value)) == max(1, -(-value.bit_length() // 7))

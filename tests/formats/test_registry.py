"""Tests for the format registry itself and the ``repro.compress`` factory."""

import numpy as np
import pytest

import repro
from repro import formats
from repro.core.blocked import BlockedMatrix
from repro.core.gcm import VARIANTS
from repro.errors import MatrixFormatError, SerializationError
from repro.io.serialize import saves_matrix


class TestRegistry:
    def test_seven_plus_formats_registered(self):
        names = formats.available()
        assert len(names) >= 7
        for required in (
            "dense", "csr", "csr_iv", "csrv", "cla", "blocked", *VARIANTS
        ):
            assert required in names

    def test_get_unknown_format(self):
        with pytest.raises(MatrixFormatError, match="unknown format"):
            formats.get("bzip2")

    def test_compress_unknown_format(self):
        with pytest.raises(MatrixFormatError):
            repro.compress(np.eye(3), format="nope")

    def test_spec_for_unregistered_object(self):
        with pytest.raises(MatrixFormatError):
            formats.spec_for(np.eye(3))

    def test_by_kind_unknown_tag(self):
        with pytest.raises(SerializationError):
            formats.by_kind(200)

    def test_specs_carry_descriptions(self):
        for name in formats.available():
            spec = formats.get(name)
            assert spec.name == name
            assert spec.description

    def test_capabilities(self):
        assert formats.get("blocked").supports_executor
        assert formats.get("cla").supports_executor
        assert not formats.get("dense").supports_executor
        assert not formats.get("re_ans").supports_executor


class TestCompressFactory:
    def test_variant_names_build_gcm(self, structured_matrix):
        for variant in VARIANTS:
            gm = repro.compress(structured_matrix, format=variant)
            assert gm.variant == variant
            assert np.allclose(gm.to_dense(), structured_matrix)

    def test_build_opts_forwarded(self, structured_matrix):
        bm = repro.compress(
            structured_matrix, format="blocked", variant="csrv", n_blocks=4
        )
        assert isinstance(bm, BlockedMatrix)
        assert bm.n_blocks == 4

    def test_auto_is_build_only(self, structured_matrix):
        am = repro.compress(structured_matrix, format="auto", n_blocks=2)
        assert isinstance(am, BlockedMatrix)
        assert formats.spec_for(am).name == "blocked"

    def test_legacy_entrypoints_agree_with_factory(self, structured_matrix):
        """The historical per-class builders are thin delegates."""
        from repro import CLAMatrix, CSRVMatrix, GrammarCompressedMatrix

        legacy = GrammarCompressedMatrix.compress(structured_matrix, variant="re_iv")
        factory = repro.compress(structured_matrix, format="re_iv")
        assert saves_matrix(legacy) == saves_matrix(factory)
        assert (
            CSRVMatrix.from_dense(structured_matrix)
            == repro.compress(structured_matrix, format="csrv")
        )
        legacy_cla = CLAMatrix.compress(structured_matrix)
        factory_cla = repro.compress(structured_matrix, format="cla")
        assert saves_matrix(legacy_cla) == saves_matrix(factory_cla)

    def test_new_format_is_picked_up_everywhere(self, structured_matrix):
        """Registering an eighth format makes it buildable by name."""

        class NegatedDense(repro.DenseMatrix):
            format_name = "negated_dense"

        spec = formats.FormatSpec(
            name="negated_dense",
            cls=NegatedDense,
            build=lambda source, **opts: NegatedDense(-np.asarray(source)),
            description="test-only: dense with flipped signs",
        )
        formats.register(spec)
        try:
            m = repro.compress(structured_matrix, format="negated_dense")
            assert np.allclose(m.to_dense(), -structured_matrix)
            assert "negated_dense" in formats.available()
            assert formats.spec_for(m).name == "negated_dense"
        finally:
            formats.registry._SPECS.pop("negated_dense", None)


class TestBenchFormats:
    def test_bench_iterates_registry_names(self, structured_matrix):
        from repro.bench import bench_formats

        entries = bench_formats(
            structured_matrix,
            names=["dense", "csrv", "re_32"],
            iterations=2,
        )
        assert [e.format for e in entries] == ["dense", "csrv", "re_32"]
        for entry in entries:
            assert entry.size_bytes > 0
            assert entry.result.iterations == 2

    def test_bench_blocked_wrapping(self, structured_matrix):
        from repro.bench import bench_formats

        entries = bench_formats(
            structured_matrix, names=["re_iv", "dense"], iterations=1, n_blocks=3
        )
        assert isinstance(entries[0].matrix, BlockedMatrix)
        assert entries[0].matrix.n_blocks == 3
        assert isinstance(entries[1].matrix, repro.DenseMatrix)

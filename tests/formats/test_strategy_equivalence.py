"""Equivalence of ``strategy="batch"`` and ``strategy="exact"`` RePair.

The vectorised batch compressor may derive a *different* grammar, but
the contract across every grammar-capable registered format is:

- the grammar expands to the same CSRV sequence (lossless identity);
- multiplication results match the exact-strategy build;
- the compressed size stays within a small tolerance of the exact
  build on the dataset profiles.
"""

import numpy as np
import pytest

import repro
from repro import formats
from repro.core.csrv import CSRVMatrix
from repro.core.repair import repair_compress
from repro.datasets import get_dataset
from tests.conftest import make_structured

#: Registered formats whose builders run RePair (and hence accept
#: ``strategy=``): the grammar variants and their blocked containers.
GRAMMAR_FORMATS = [
    name for name in formats.available() if formats.get(name).supports_plan_cache
]

#: Extra structural options exercised for the container formats.
BUILD_OPTS = {
    "blocked": {"variant": "re_ans", "n_blocks": 3},
    "auto": {"n_blocks": 3},
}


@pytest.fixture(scope="module")
def dense():
    rng = np.random.default_rng(4242)
    return make_structured(rng, n=80, m=13, pool=4)


def test_grammar_formats_cover_expected_names():
    # The capability flag drives this suite; a registry change that
    # silently drops the flag would skip everything below.
    assert set(GRAMMAR_FORMATS) >= {"re_32", "re_iv", "re_ans", "blocked", "auto"}


@pytest.mark.parametrize("name", GRAMMAR_FORMATS)
class TestBatchBuildEquivalence:
    def _pair(self, dense, name):
        opts = BUILD_OPTS.get(name, {})
        exact = repro.compress(dense, format=name, strategy="exact", **opts)
        batch = repro.compress(dense, format=name, strategy="batch", **opts)
        return exact, batch

    def test_expands_to_same_matrix(self, dense, name):
        exact, batch = self._pair(dense, name)
        np.testing.assert_array_equal(batch.to_dense(), dense)
        np.testing.assert_array_equal(batch.to_dense(), exact.to_dense())

    def test_mvm_matches_exact_build(self, dense, name):
        exact, batch = self._pair(dense, name)
        rng = np.random.default_rng(7)
        x = rng.standard_normal(dense.shape[1])
        y = rng.standard_normal(dense.shape[0])
        np.testing.assert_allclose(
            batch.right_multiply(x), exact.right_multiply(x), rtol=1e-10
        )
        np.testing.assert_allclose(
            batch.left_multiply(y), exact.left_multiply(y), rtol=1e-10
        )
        panel = rng.standard_normal((dense.shape[1], 5))
        np.testing.assert_allclose(
            batch.right_multiply_matrix(panel),
            exact.right_multiply_matrix(panel),
            rtol=1e-10,
        )


def test_batch_sequence_identity_on_profiles():
    """The batch grammar expands to the *identical* CSRV sequence."""
    for profile in ("census", "covtype"):
        dense = np.asarray(get_dataset(profile, n_rows=300).matrix)
        s = CSRVMatrix.from_dense(dense).s
        grammar = repair_compress(s, strategy="batch")
        grammar.validate()
        np.testing.assert_array_equal(grammar.expand(), s)


@pytest.mark.parametrize("profile", ["census", "airline78", "covtype", "mnist2m"])
def test_ratio_tolerance_on_profiles(profile):
    """Batch compression ratio stays near the exact ratio (ISSUE: 2%).

    Compared as compressed-size / dense-size percentages of the
    ``re_ans`` build — the paper's headline ratio — on reduced-row
    synthetic profiles (the full-size gap is tracked by
    ``benchmarks/bench_hotpaths.py``).
    """
    dense = np.asarray(get_dataset(profile, n_rows=500).matrix)
    dense_bytes = dense.size * 8
    exact = repro.compress(dense, format="re_ans", strategy="exact")
    batch = repro.compress(dense, format="re_ans", strategy="batch")
    ratio_exact = 100.0 * exact.size_bytes() / dense_bytes
    ratio_batch = 100.0 * batch.size_bytes() / dense_bytes
    assert ratio_batch <= ratio_exact + 2.0, (
        f"{profile}: batch ratio {ratio_batch:.2f}% vs exact "
        f"{ratio_exact:.2f}% exceeds the 2-point tolerance"
    )

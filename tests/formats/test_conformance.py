"""The format conformance suite: one battery over every registered format.

Parametrized over :func:`repro.formats.available`, so any future
registration is automatically held to the same contract: lossless
roundtrip against dense, panel-vs-loop kernel equivalence, ``out=``
aliasing, operator sugar, serialization, and size accounting.
"""

import numpy as np
import pytest

import repro
from repro import formats
from repro.errors import MatrixFormatError
from repro.io.serialize import (
    loads_matrix,
    peek_matrix_info,
    saves_matrix,
)
from tests.conftest import make_structured

FORMAT_NAMES = formats.available()

#: Build options that exercise multi-block / multi-group structure for
#: the formats that have it (every other format builds with defaults).
BUILD_OPTS = {
    "blocked": {"variant": "re_iv", "n_blocks": 3},
    "auto": {"n_blocks": 3},
}


@pytest.fixture(scope="module")
def dense():
    rng = np.random.default_rng(987)
    return make_structured(rng, n=48, m=11)


@pytest.fixture(scope="module", params=FORMAT_NAMES)
def built(request, dense):
    """(name, matrix) for every registered format, built once per module."""
    name = request.param
    return name, repro.compress(dense, format=name, **BUILD_OPTS.get(name, {}))


class TestProtocolConformance:
    def test_registered_spec_matches_instance(self, built):
        name, matrix = built
        spec = formats.get(name)
        assert isinstance(matrix, spec.cls)
        # The instance resolves back to a registered spec ("auto" is a
        # build-only name whose instances resolve to "blocked").
        resolved = formats.spec_for(matrix)
        assert resolved.name == matrix.format_name
        assert isinstance(matrix, formats.MatrixFormat)

    def test_roundtrip_vs_dense(self, built, dense):
        _, matrix = built
        assert matrix.shape == dense.shape
        assert np.allclose(matrix.to_dense(), dense)

    def test_single_vector_kernels(self, built, dense):
        _, matrix = built
        rng = np.random.default_rng(1)
        x = rng.standard_normal(dense.shape[1])
        y = rng.standard_normal(dense.shape[0])
        assert np.allclose(matrix.right_multiply(x), dense @ x)
        assert np.allclose(matrix.left_multiply(y), y @ dense)
        assert np.allclose(matrix.transpose_multiply(y), dense.T @ y)

    def test_panel_matches_loop(self, built, dense):
        """Panel kernels agree with k stacked single multiplications."""
        _, matrix = built
        rng = np.random.default_rng(2)
        X = rng.standard_normal((dense.shape[1], 6))
        Y = rng.standard_normal((dense.shape[0], 4))
        loop_right = np.stack(
            [matrix.right_multiply(X[:, j]) for j in range(X.shape[1])], axis=1
        )
        loop_left = np.stack(
            [matrix.left_multiply(Y[:, j]) for j in range(Y.shape[1])], axis=1
        )
        assert np.allclose(matrix.right_multiply_matrix(X), loop_right)
        assert np.allclose(matrix.left_multiply_matrix(Y), loop_left)

    def test_panel_width_chunking(self, built, dense):
        _, matrix = built
        rng = np.random.default_rng(3)
        X = rng.standard_normal((dense.shape[1], 7))
        assert np.allclose(
            matrix.right_multiply_matrix(X, panel_width=3), dense @ X
        )
        with pytest.raises(MatrixFormatError):
            matrix.right_multiply_matrix(X, panel_width=0)

    def test_out_aliasing(self, built, dense):
        """``out=`` receives the result in place and is returned."""
        _, matrix = built
        rng = np.random.default_rng(4)
        X = rng.standard_normal((dense.shape[1], 5))
        out = np.full((dense.shape[0], 5), np.nan)
        returned = matrix.right_multiply_matrix(X, out=out)
        assert returned is out
        assert np.allclose(out, dense @ X)
        out_left = np.full((dense.shape[1], 3), np.nan)
        Y = rng.standard_normal((dense.shape[0], 3))
        returned = matrix.left_multiply_matrix(Y, out=out_left)
        assert returned is out_left
        assert np.allclose(out_left, dense.T @ Y)

    def test_out_shape_rejected(self, built, dense):
        _, matrix = built
        X = np.ones((dense.shape[1], 2))
        with pytest.raises(MatrixFormatError):
            matrix.right_multiply_matrix(X, out=np.empty((1, 1)))

    def test_matmul_operators(self, built, dense):
        _, matrix = built
        rng = np.random.default_rng(5)
        x = rng.standard_normal(dense.shape[1])
        y = rng.standard_normal(dense.shape[0])
        X = rng.standard_normal((dense.shape[1], 3))
        Y = rng.standard_normal((4, dense.shape[0]))
        assert np.allclose(matrix @ x, dense @ x)
        assert np.allclose(matrix @ X, dense @ X)
        assert np.allclose(y @ matrix, y @ dense)
        assert np.allclose(Y @ matrix, Y @ dense)

    def test_matmul_validation_errors(self, built, dense):
        _, matrix = built
        with pytest.raises(MatrixFormatError):
            matrix @ np.ones(dense.shape[1] + 1)
        with pytest.raises(MatrixFormatError):
            np.ones(dense.shape[0] + 2) @ matrix
        with pytest.raises(MatrixFormatError):
            matrix @ "not numeric"

    def test_threads_and_executor_accepted(self, built, dense):
        """The uniform kernel signature works for every format."""
        from repro.serve.executor import BlockExecutor

        _, matrix = built
        x = np.ones(dense.shape[1])
        assert np.allclose(matrix.right_multiply(x, threads=2), dense @ x)
        with BlockExecutor(2) as ex:
            assert np.allclose(
                matrix.right_multiply(x, executor=ex), dense @ x
            )
        with pytest.raises(MatrixFormatError):
            matrix.right_multiply(x, threads=0)

    def test_size_accounting(self, built):
        _, matrix = built
        assert matrix.size_bytes() > 0
        breakdown = matrix.size_breakdown()
        assert breakdown and all(v >= 0 for v in breakdown.values())
        assert sum(breakdown.values()) == matrix.size_bytes()
        assert matrix.resident_overhead_bytes() >= 0

    def test_serialize_roundtrip(self, built, dense):
        _, matrix = built
        blob = saves_matrix(matrix)
        back = loads_matrix(blob)
        assert type(back) is type(matrix)
        assert back.format_name == matrix.format_name
        assert back.shape == matrix.shape
        assert back.size_bytes() == matrix.size_bytes()
        assert np.allclose(back.to_dense(), dense)

    def test_peek_header(self, built, dense):
        _, matrix = built
        info = peek_matrix_info(saves_matrix(matrix))
        assert tuple(info["shape"]) == dense.shape
        assert "kind" in info


class TestBatchDispatch:
    """The serving dispatcher answers panels for every format."""

    def test_batch_right_and_left(self, built, dense):
        from repro.serve.batch import batch_left_multiply, batch_right_multiply

        _, matrix = built
        rng = np.random.default_rng(6)
        X = rng.standard_normal((dense.shape[1], 5))
        Y = rng.standard_normal((dense.shape[0], 5))
        assert np.allclose(batch_right_multiply(matrix, X), dense @ X)
        assert np.allclose(batch_left_multiply(matrix, Y), dense.T @ Y)

    def test_batch_with_executor(self, built, dense):
        from repro.serve.batch import batch_right_multiply
        from repro.serve.executor import BlockExecutor

        _, matrix = built
        X = np.ones((dense.shape[1], 3))
        with BlockExecutor(2) as ex:
            assert np.allclose(
                batch_right_multiply(matrix, X, executor=ex), dense @ X
            )

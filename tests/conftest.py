"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def paper_matrix() -> np.ndarray:
    """The 6×5 worked example of Figure 1 in the paper."""
    return np.array(
        [
            [1.2, 3.4, 5.6, 0.0, 2.3],
            [2.3, 0.0, 2.3, 4.5, 1.7],
            [1.2, 3.4, 2.3, 4.5, 0.0],
            [3.4, 0.0, 5.6, 0.0, 2.3],
            [2.3, 0.0, 2.3, 4.5, 0.0],
            [1.2, 3.4, 2.3, 4.5, 3.4],
        ]
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def make_structured(
    rng: np.random.Generator,
    n: int = 60,
    m: int = 12,
    density: float = 0.6,
    pool: int = 5,
) -> np.ndarray:
    """A random matrix with repeated values (so grammars find rules)."""
    values = np.round(rng.uniform(0.5, 9.5, size=pool), 2)
    matrix = values[rng.integers(0, pool, size=(n, m))]
    matrix[rng.random((n, m)) >= density] = 0.0
    return matrix


@pytest.fixture
def structured_matrix(rng) -> np.ndarray:
    return make_structured(rng)

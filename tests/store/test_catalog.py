"""Catalog: CRUD, schema migrations, and multi-process WAL writes."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.store.catalog import (
    MIGRATIONS,
    SCHEMA_VERSION,
    Catalog,
    CatalogEntry,
    ShardRow,
)


def entry(name: str, **over) -> CatalogEntry:
    base = dict(
        name=name,
        path=f"/store/{name}.gcmx",
        kind="gcm",
        format="re_ans",
        shape=(100, 20),
        file_bytes=4096,
        integrity="present",
        extra={"variant": "re_ans", "n_rules": 7},
        provenance={"command": "compress"},
    )
    base.update(over)
    return CatalogEntry(**base)


@pytest.fixture
def catalog(tmp_path) -> Catalog:
    return Catalog(tmp_path / "catalog.sqlite")


class TestSchema:
    def test_fresh_catalog_is_at_latest_version(self, catalog):
        assert catalog.schema_version() == SCHEMA_VERSION

    def test_migrations_are_append_only_and_ordered(self):
        versions = [v for v, _ in MIGRATIONS]
        assert versions == sorted(versions)
        assert versions == list(range(1, SCHEMA_VERSION + 1))

    def test_migrate_is_idempotent(self, catalog):
        assert catalog.migrate() == SCHEMA_VERSION
        assert catalog.migrate() == SCHEMA_VERSION

    def test_reopen_keeps_rows(self, tmp_path):
        path = tmp_path / "catalog.sqlite"
        Catalog(path).upsert(entry("alpha"))
        again = Catalog(path)
        assert again.names() == ["alpha"]
        assert again.schema_version() == SCHEMA_VERSION


class TestCrud:
    def test_get_roundtrips_every_field(self, catalog):
        e = entry("alpha")
        catalog.upsert(e)
        got = catalog.get("alpha")
        assert got is not None
        assert got.path == e.path
        assert got.kind == e.kind
        assert got.format == e.format
        assert got.shape == e.shape
        assert got.file_bytes == e.file_bytes
        assert got.extra == e.extra
        assert got.provenance == e.provenance
        assert got.registered_at != ""

    def test_info_reconstructs_header_peek_shape(self, catalog):
        catalog.upsert(entry("alpha"))
        info = catalog.get("alpha").info()
        assert info["kind"] == "gcm"
        assert info["shape"] == (100, 20)
        assert info["variant"] == "re_ans"
        assert info["integrity"] == "present"
        assert info["file_bytes"] == 4096

    def test_upsert_replaces_in_place(self, catalog):
        catalog.upsert(entry("alpha"))
        catalog.upsert(entry("alpha", file_bytes=9999, integrity="verified"))
        assert catalog.count() == 1
        got = catalog.get("alpha")
        assert got.file_bytes == 9999
        assert got.integrity == "verified"

    def test_missing_name_is_none(self, catalog):
        assert catalog.get("nope") is None
        assert catalog.remove("nope") is False

    def test_names_and_entries_sorted(self, catalog):
        for name in ("gamma", "alpha", "beta"):
            catalog.upsert(entry(name))
        assert catalog.names() == ["alpha", "beta", "gamma"]
        assert [e.name for e in catalog.entries()] == ["alpha", "beta", "gamma"]

    def test_set_integrity_and_bench(self, catalog):
        catalog.upsert(entry("alpha"))
        catalog.set_integrity("alpha", "verified")
        catalog.set_bench("alpha", {"multiply_seconds": 0.01})
        got = catalog.get("alpha")
        assert got.integrity == "verified"
        assert got.bench == {"multiply_seconds": 0.01}


class TestShardRows:
    def shard_rows(self):
        return tuple(
            ShardRow(
                index=i,
                row_start=i * 50,
                n_rows=50,
                offset=64 + i * 1000,
                length=1000,
                integrity="present",
            )
            for i in range(3)
        )

    def test_shards_roundtrip_in_index_order(self, catalog):
        catalog.upsert(entry("sharded", kind="sharded"), self.shard_rows())
        rows = catalog.shards("sharded")
        assert [r.index for r in rows] == [0, 1, 2]
        assert rows[1].manifest_entry().offset == 64 + 1000

    def test_upsert_replaces_shard_rows(self, catalog):
        catalog.upsert(entry("sharded", kind="sharded"), self.shard_rows())
        catalog.upsert(entry("sharded", kind="sharded"), self.shard_rows()[:2])
        assert len(catalog.shards("sharded")) == 2

    def test_remove_cascades_to_shards(self, catalog):
        catalog.upsert(entry("sharded", kind="sharded"), self.shard_rows())
        assert catalog.remove("sharded") is True
        assert catalog.shards("sharded") == []

    def test_shard_integrity_states_update_by_index(self, catalog):
        catalog.upsert(entry("sharded", kind="sharded"), self.shard_rows())
        catalog.set_integrity(
            "sharded", "verified", ("verified", "failed", "verified")
        )
        assert [r.integrity for r in catalog.shards("sharded")] == [
            "verified",
            "failed",
            "verified",
        ]


WORKER = """
import sys
from repro.store.catalog import Catalog, CatalogEntry

path, worker, n = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
catalog = Catalog(path)
for i in range(n):
    catalog.upsert(
        CatalogEntry(
            name=f"w{worker}-m{i}",
            path=f"/store/w{worker}-m{i}.gcmx",
            kind="gcm",
            format="re_32",
            shape=(10, 10),
            file_bytes=128 + i,
            integrity="present",
        )
    )
print(len(catalog.names()))
"""


class TestConcurrency:
    def test_parallel_writers_under_wal(self, tmp_path):
        """Several processes upsert concurrently; WAL + busy_timeout
        must serialize them without a single ``database is locked``."""
        path = tmp_path / "catalog.sqlite"
        Catalog(path)  # migrate once, before the writers race
        src = str(Path(__file__).resolve().parents[2] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        n_workers, n_rows = 4, 25
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", WORKER, str(path), str(w), str(n_rows)],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=env,
            )
            for w in range(n_workers)
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
        catalog = Catalog(path)
        assert catalog.count() == n_workers * n_rows
        assert catalog.schema_version() == SCHEMA_VERSION

    def test_reader_sees_writer_commits_live(self, tmp_path):
        """Two Catalog objects over the same file are independent
        connections; a write through one is visible through the other."""
        path = tmp_path / "catalog.sqlite"
        writer, reader = Catalog(path), Catalog(path)
        writer.upsert(entry("alpha"))
        assert reader.names() == ["alpha"]
        writer.remove("alpha")
        assert reader.names() == []

"""MatrixStore: registration, verify sync, and self-healing reindex."""

import numpy as np
import pytest

import repro
from repro.core.gcm import GrammarCompressedMatrix
from repro.io.serialize import save_matrix
from repro.resilience.integrity import (
    INTEGRITY_FAILED,
    INTEGRITY_PRESENT,
    INTEGRITY_VERIFIED,
)
from repro.shard import build_sharded
from repro.store import MatrixStore, is_store
from tests.conftest import make_structured


@pytest.fixture
def store(tmp_path, rng):
    """A store with one compressed, one dense, and one sharded matrix."""
    store = MatrixStore(tmp_path / "mstore")
    dense = {
        "alpha": make_structured(rng, n=60, m=10),
        "beta": make_structured(rng, n=40, m=8),
        "wide": make_structured(rng, n=90, m=12),
    }
    store.add("alpha", GrammarCompressedMatrix.compress(dense["alpha"], variant="re_32"))
    store.add("beta", repro.compress(dense["beta"], format="dense"))
    store.add("wide", build_sharded(dense["wide"], n_shards=3))
    return store, dense


class TestRegistration:
    def test_is_store_detects_catalog(self, store, tmp_path):
        assert is_store(store[0].root)
        assert not is_store(tmp_path)

    def test_add_catalogs_header_fields(self, store):
        st, dense = store
        entry = st.get("alpha")
        assert entry.kind == "gcm"
        assert entry.format == "re_32"
        assert entry.shape == dense["alpha"].shape
        assert entry.file_bytes == st.path_of("alpha").stat().st_size
        assert entry.integrity == INTEGRITY_PRESENT

    def test_sharded_add_catalogs_manifest_rows(self, store):
        st, _ = store
        rows = st.catalog.shards("wide")
        assert len(rows) == 3
        assert rows[0].row_start == 0
        # byte placement matches the on-disk manifest exactly
        from repro.io.serialize import read_shard_manifest

        _, manifest = read_shard_manifest(st.path_of("wide"))
        assert [(r.offset, r.length) for r in rows] == [
            (e.offset, e.length) for e in manifest
        ]

    def test_register_file_defaults_name_to_stem(self, store, rng, tmp_path):
        st, _ = store
        extra = tmp_path / "mstore" / "gamma.gcmx"
        save_matrix(repro.compress(make_structured(rng), format="csrv"), extra)
        entry = st.register_file(extra)
        assert entry.name == "gamma"
        assert "gamma" in st.names()

    def test_provenance_recorded(self, tmp_path, rng):
        st = MatrixStore(tmp_path / "s")
        st.add(
            "m",
            repro.compress(make_structured(rng), format="csrv"),
            provenance={"command": "compress", "input": "m.npy"},
        )
        assert st.get("m").provenance["command"] == "compress"

    def test_totals(self, store):
        st, _ = store
        assert len(st) == 3
        assert st.names() == ["alpha", "beta", "wide"]
        assert st.total_bytes() == sum(
            st.path_of(n).stat().st_size for n in st.names()
        )


class TestVerify:
    def test_verify_upgrades_states_in_catalog(self, store):
        st, _ = store
        results = st.verify(deep=True)
        assert set(results.values()) == {INTEGRITY_VERIFIED}
        assert st.get("wide").integrity == INTEGRITY_VERIFIED
        assert all(
            r.integrity == INTEGRITY_VERIFIED for r in st.catalog.shards("wide")
        )

    def test_verify_records_failure_without_aborting(self, store):
        st, _ = store
        path = st.path_of("beta")
        raw = bytearray(path.read_bytes())
        raw[-2] ^= 0xFF  # flip a bit inside the stored CRC value
        path.write_bytes(bytes(raw))
        results = st.verify(deep=True)
        assert results["beta"] == INTEGRITY_FAILED
        assert results["alpha"] == INTEGRITY_VERIFIED
        assert st.get("beta").integrity == INTEGRITY_FAILED


class TestReindex:
    def test_noop_when_nothing_changed(self, store):
        st, _ = store
        report = st.reindex()
        assert report == {
            "added": [],
            "refreshed": [],
            "removed": [],
            "corrupt": [],
        }

    def test_out_of_band_add_and_delete(self, store, rng):
        st, _ = store
        # simulate another process dropping a file in and removing one
        save_matrix(
            repro.compress(make_structured(rng), format="csrv"),
            st.root / "fresh.gcmx",
        )
        st.path_of("beta").unlink()
        report = st.reindex()
        assert report["added"] == ["fresh"]
        assert report["removed"] == ["beta"]
        assert st.names() == ["alpha", "fresh", "wide"]

    def test_out_of_band_rewrite_is_refreshed(self, store, rng):
        st, dense = store
        bigger = np.vstack([dense["beta"], dense["beta"]])
        save_matrix(repro.compress(bigger, format="dense"), st.path_of("beta"))
        report = st.reindex()
        assert report["refreshed"] == ["beta"]
        assert st.get("beta").shape == bigger.shape

    def test_corrupt_header_is_dropped_from_catalog(self, store):
        st, _ = store
        path = st.path_of("alpha")
        payload = bytearray(path.read_bytes())
        payload[:4] = b"XXXX"  # destroy the magic: header no longer parses
        path.write_bytes(bytes(payload))
        report = st.reindex()
        assert report["corrupt"] == ["alpha"]
        assert "alpha" not in st.names()

    def test_rebuild_from_scratch(self, store):
        st, _ = store
        (st.root / "catalog.sqlite").unlink()
        rebuilt = MatrixStore(st.root)
        report = rebuilt.reindex()
        assert sorted(report["added"]) == ["alpha", "beta", "wide"]
        assert rebuilt.names() == ["alpha", "beta", "wide"]
        assert len(rebuilt.catalog.shards("wide")) == 3

    def test_open_missing_root_without_create(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            MatrixStore(tmp_path / "absent", create=False)


class TestBench:
    def test_record_bench_lands_in_row(self, store):
        st, _ = store
        st.record_bench("alpha", {"multiply_seconds": 0.002})
        assert st.get("alpha").bench == {"multiply_seconds": 0.002}

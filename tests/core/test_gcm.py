"""Tests for GrammarCompressedMatrix and its three physical variants."""

import numpy as np
import pytest

from repro.core.csrv import CSRVMatrix
from repro.core.gcm import VARIANTS, GrammarCompressedMatrix
from repro.errors import MatrixFormatError

ALL_VARIANTS = list(VARIANTS)


@pytest.fixture(params=ALL_VARIANTS)
def variant(request):
    return request.param


class TestCompression:
    def test_lossless_roundtrip(self, structured_matrix, variant):
        gm = GrammarCompressedMatrix.compress(structured_matrix, variant=variant)
        assert np.array_equal(gm.to_dense(), structured_matrix)

    def test_decompress_matches_csrv(self, structured_matrix, variant):
        csrv = CSRVMatrix.from_dense(structured_matrix)
        gm = GrammarCompressedMatrix.compress(csrv, variant=variant)
        assert gm.decompress() == csrv

    def test_accepts_dense_or_csrv(self, paper_matrix):
        a = GrammarCompressedMatrix.compress(paper_matrix)
        b = GrammarCompressedMatrix.compress(CSRVMatrix.from_dense(paper_matrix))
        assert np.array_equal(a.to_dense(), b.to_dense())

    def test_unknown_variant_rejected(self, paper_matrix):
        with pytest.raises(MatrixFormatError):
            GrammarCompressedMatrix.compress(paper_matrix, variant="re_99")

    def test_grammar_decoded_identically_across_variants(self, structured_matrix):
        grammars = [
            GrammarCompressedMatrix.compress(
                structured_matrix, variant=v
            ).decode_grammar()
            for v in ALL_VARIANTS
        ]
        for g in grammars[1:]:
            assert np.array_equal(g.rules, grammars[0].rules)
            assert np.array_equal(g.final, grammars[0].final)

    def test_max_rules_forwarded(self, structured_matrix):
        gm = GrammarCompressedMatrix.compress(structured_matrix, max_rules=2)
        assert gm.n_rules <= 2
        assert np.array_equal(gm.to_dense(), structured_matrix)


class TestMultiplication:
    def test_right_matches_dense(self, structured_matrix, variant, rng):
        gm = GrammarCompressedMatrix.compress(structured_matrix, variant=variant)
        x = rng.standard_normal(structured_matrix.shape[1])
        assert np.allclose(gm.right_multiply(x), structured_matrix @ x)

    def test_left_matches_dense(self, structured_matrix, variant, rng):
        gm = GrammarCompressedMatrix.compress(structured_matrix, variant=variant)
        y = rng.standard_normal(structured_matrix.shape[0])
        assert np.allclose(gm.left_multiply(y), y @ structured_matrix)

    def test_repeated_multiplications_consistent(self, paper_matrix, variant):
        gm = GrammarCompressedMatrix.compress(paper_matrix, variant=variant)
        x = np.ones(5)
        first = gm.right_multiply(x)
        for _ in range(3):
            assert np.array_equal(gm.right_multiply(x), first)

    def test_all_variants_agree(self, structured_matrix, rng):
        x = rng.standard_normal(structured_matrix.shape[1])
        results = [
            GrammarCompressedMatrix.compress(
                structured_matrix, variant=v
            ).right_multiply(x)
            for v in ALL_VARIANTS
        ]
        for r in results[1:]:
            assert np.allclose(r, results[0])


class TestSizeAccounting:
    def test_breakdown_keys(self, paper_matrix, variant):
        gm = GrammarCompressedMatrix.compress(paper_matrix, variant=variant)
        assert set(gm.size_breakdown()) == {"C", "R", "V"}
        assert gm.size_bytes() == sum(gm.size_breakdown().values())

    def test_re32_formula(self, structured_matrix):
        gm = GrammarCompressedMatrix.compress(structured_matrix, variant="re_32")
        parts = gm.size_breakdown()
        assert parts["C"] == 4 * gm.c_length
        assert parts["R"] == 8 * gm.n_rules
        assert parts["V"] == 8 * gm.values.size

    def test_size_ordering_on_compressible_input(self, rng):
        # Highly repetitive input: re_ans <= re_iv <= re_32 (paper's
        # Table 1 ordering).
        matrix = np.tile(rng.integers(1, 4, size=(4, 12)).astype(float), (50, 1))
        sizes = {
            v: GrammarCompressedMatrix.compress(matrix, variant=v).size_bytes()
            for v in ALL_VARIANTS
        }
        assert sizes["re_iv"] <= sizes["re_32"]
        assert sizes["re_ans"] <= sizes["re_32"]

    def test_grammar_smaller_than_csrv_on_repetitive_input(self, rng):
        matrix = np.tile(rng.integers(1, 5, size=(6, 10)).astype(float), (40, 1))
        csrv = CSRVMatrix.from_dense(matrix)
        gm = GrammarCompressedMatrix.compress(csrv, variant="re_32")
        assert gm.size_bytes() < csrv.size_bytes()


class TestEngineCaching:
    def test_re32_caches_engine(self, paper_matrix):
        gm = GrammarCompressedMatrix.compress(paper_matrix, variant="re_32")
        assert gm._get_engine() is gm._get_engine()

    def test_re_iv_rebuilds_engine(self, paper_matrix):
        gm = GrammarCompressedMatrix.compress(paper_matrix, variant="re_iv")
        assert gm._get_engine() is not gm._get_engine()

    def test_re_ans_rebuilds_engine(self, paper_matrix):
        gm = GrammarCompressedMatrix.compress(paper_matrix, variant="re_ans")
        assert gm._get_engine() is not gm._get_engine()


class TestEdgeCases:
    def test_all_zero_matrix(self, variant):
        matrix = np.zeros((5, 4))
        gm = GrammarCompressedMatrix.compress(matrix, variant=variant)
        assert np.array_equal(gm.to_dense(), matrix)
        assert np.array_equal(gm.right_multiply(np.ones(4)), np.zeros(5))

    def test_single_row(self, variant):
        matrix = np.array([[1.0, 0.0, 2.0]])
        gm = GrammarCompressedMatrix.compress(matrix, variant=variant)
        assert np.allclose(gm.right_multiply(np.ones(3)), [3.0])

    def test_single_column(self, variant):
        matrix = np.array([[1.0], [2.0], [1.0], [2.0]])
        gm = GrammarCompressedMatrix.compress(matrix, variant=variant)
        y = np.ones(4)
        assert np.allclose(gm.left_multiply(y), [6.0])

    def test_repr_mentions_variant(self, paper_matrix, variant):
        gm = GrammarCompressedMatrix.compress(paper_matrix, variant=variant)
        assert variant in repr(gm)

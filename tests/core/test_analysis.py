"""Tests for the grammar analysis utilities (Definitions 3.5–3.9)."""

import numpy as np
import pytest

from repro.core.analysis import (
    grammar_stats,
    nonterminal_rows,
    rule_usage_counts,
    sum_y,
)
from repro.core.csrv import CSRVMatrix
from repro.core.grammar import Grammar
from repro.core.repair import repair_compress


@pytest.fixture
def tiny_grammar():
    # N0 -> 1 2 ; N1 -> N0 3 ; C = N1 $ N0 $ N1 $
    return Grammar(
        nt_base=5,
        rules=np.array([[1, 2], [5, 3]]),
        final=np.array([6, 0, 5, 0, 6, 0]),
    )


class TestRuleUsage:
    def test_counts_final_and_rules(self, tiny_grammar):
        counts = rule_usage_counts(tiny_grammar)
        # N0: once in C + once in N1's rhs = 2; N1: twice in C.
        assert counts.tolist() == [2, 2]

    def test_every_rule_used_in_valid_grammar(self, structured_matrix):
        grammar = repair_compress(CSRVMatrix.from_dense(structured_matrix).s)
        counts = rule_usage_counts(grammar)
        assert (counts >= 1).all()


class TestNonterminalRows:
    def test_tiny_grammar_rows(self, tiny_grammar):
        rows = nonterminal_rows(tiny_grammar)
        # N1 appears in rows 0 and 2; N0 appears directly in row 1 and
        # through N1 in rows 0 and 2.
        assert rows[1] == {0, 2}
        assert rows[0] == {0, 1, 2}

    def test_rows_match_expansion(self, structured_matrix):
        # rows(N_j) must equal the rows whose expanded CSRV segment
        # contains N_j's expansion — checked via sum_y with indicator
        # vectors on a real grammar below; here check consistency of
        # set sizes against usage.
        grammar = repair_compress(CSRVMatrix.from_dense(structured_matrix).s)
        rows = nonterminal_rows(grammar)
        n = structured_matrix.shape[0]
        for row_set in rows:
            assert row_set  # every rule reachable from C covers >= 1 row
            assert all(0 <= r < n for r in row_set)


class TestSumY:
    def test_tiny_grammar_sums(self, tiny_grammar):
        y = np.array([1.0, 10.0, 100.0])
        w = sum_y(tiny_grammar, y)
        # N1 in rows {0, 2} once each: 101; N0: row 1 directly + via N1.
        assert w[1] == pytest.approx(101.0)
        assert w[0] == pytest.approx(111.0)

    def test_multiplicity_counted(self):
        # N0 used twice inside one row: its sum_y counts y[0] twice.
        g = Grammar(
            nt_base=3,
            rules=np.array([[1, 2], [3, 3]]),
            final=np.array([4, 0]),
        )
        w = sum_y(g, np.array([5.0]))
        assert w[0] == pytest.approx(10.0)  # two occurrences of N0
        assert w[1] == pytest.approx(5.0)

    def test_consistent_with_left_multiplication(self, structured_matrix, rng):
        # Lemma 3.7/3.9: rebuilding x from sum_y over terminals must
        # equal the left multiplication.  Spot-check via the engine.
        csrv = CSRVMatrix.from_dense(structured_matrix)
        grammar = repair_compress(csrv.s)
        y = rng.standard_normal(structured_matrix.shape[0])
        w = sum_y(grammar, y)
        # Accumulate terminal contributions: C occurrences + rule sides
        # weighted by their parent's sum.
        m = structured_matrix.shape[1]
        x = np.zeros(m)
        is_sep = grammar.final == 0
        row_of_pos = np.cumsum(is_sep) - is_sep
        for pos in np.flatnonzero((~is_sep) & (grammar.final < grammar.nt_base)):
            code = grammar.final[pos] - 1
            x[code % m] += csrv.values[code // m] * y[row_of_pos[pos]]
        for j in range(grammar.n_rules):
            for side in grammar.rules[j]:
                if side < grammar.nt_base:
                    code = side - 1
                    x[code % m] += csrv.values[code // m] * w[j]
        assert np.allclose(x, y @ structured_matrix)


class TestGrammarStats:
    def test_fields(self, structured_matrix):
        csrv = CSRVMatrix.from_dense(structured_matrix)
        grammar = repair_compress(csrv.s)
        stats = grammar_stats(grammar)
        assert stats.n_rules == grammar.n_rules
        assert stats.final_length == grammar.final.size
        assert stats.expanded_length == csrv.s.size
        assert stats.size == grammar.size
        assert stats.depth == grammar.depth
        assert stats.max_expansion >= stats.mean_expansion >= 2.0

    def test_compaction_reflects_compression(self):
        repetitive = np.tile([1, 2, 3, 4], 200)
        random_seq = np.random.default_rng(0).integers(1, 10_000, size=800)
        s_rep = grammar_stats(repair_compress(repetitive))
        s_rand = grammar_stats(repair_compress(random_seq))
        assert s_rep.compaction > 5.0
        assert s_rand.compaction < 1.5

    def test_rule_free_grammar(self):
        stats = grammar_stats(repair_compress(np.array([1, 2, 3])))
        assert stats.n_rules == 0
        assert stats.max_expansion == 0
        assert stats.compaction == pytest.approx(1.0)

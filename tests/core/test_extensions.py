"""Tests for the extension features: multi-vector MVM, auto per-block
format selection (Section 4.2 avenue), scipy interop."""

import numpy as np
import pytest
from scipy import sparse

from repro.core.blocked import BlockedMatrix
from repro.core.csrv import CSRVMatrix
from repro.core.gcm import GrammarCompressedMatrix
from repro.errors import MatrixFormatError
from tests.conftest import make_structured


class TestMultiVector:
    def test_gcm_right_multiply_matrix(self, structured_matrix, rng):
        gm = GrammarCompressedMatrix.compress(structured_matrix)
        x_block = rng.standard_normal((structured_matrix.shape[1], 5))
        assert np.allclose(
            gm.right_multiply_matrix(x_block), structured_matrix @ x_block
        )

    @pytest.mark.parametrize("variant", ["re_32", "re_iv", "re_ans"])
    def test_all_variants(self, structured_matrix, rng, variant):
        gm = GrammarCompressedMatrix.compress(structured_matrix, variant=variant)
        x_block = rng.standard_normal((structured_matrix.shape[1], 3))
        assert np.allclose(
            gm.right_multiply_matrix(x_block), structured_matrix @ x_block
        )

    def test_single_column_block_matches_vector_path(self, structured_matrix, rng):
        gm = GrammarCompressedMatrix.compress(structured_matrix)
        x = rng.standard_normal(structured_matrix.shape[1])
        batched = gm.right_multiply_matrix(x[:, None]).ravel()
        assert np.allclose(batched, gm.right_multiply(x))

    def test_1d_input_promoted(self, structured_matrix):
        gm = GrammarCompressedMatrix.compress(structured_matrix)
        out = gm.right_multiply_matrix(np.ones(structured_matrix.shape[1]))
        assert out.shape == (structured_matrix.shape[0], 1)

    def test_csrv_right_multiply_matrix(self, structured_matrix, rng):
        csrv = CSRVMatrix.from_dense(structured_matrix)
        x_block = rng.standard_normal((structured_matrix.shape[1], 4))
        assert np.allclose(
            csrv.right_multiply_matrix(x_block), structured_matrix @ x_block
        )

    def test_blocked_right_multiply_matrix(self, structured_matrix, rng):
        bm = BlockedMatrix.compress(structured_matrix, variant="re_iv", n_blocks=3)
        x_block = rng.standard_normal((structured_matrix.shape[1], 4))
        assert np.allclose(
            bm.right_multiply_matrix(x_block, threads=2),
            structured_matrix @ x_block,
        )

    def test_wrong_shape_rejected(self, structured_matrix):
        gm = GrammarCompressedMatrix.compress(structured_matrix)
        with pytest.raises(MatrixFormatError):
            gm.right_multiply_matrix(np.ones((3, 2)))
        with pytest.raises(MatrixFormatError):
            gm.left_multiply_matrix(np.ones((3, 2)))

    @pytest.mark.parametrize("variant", ["re_32", "re_iv", "re_ans"])
    def test_left_multiply_matrix(self, structured_matrix, rng, variant):
        gm = GrammarCompressedMatrix.compress(structured_matrix, variant=variant)
        y_block = rng.standard_normal((structured_matrix.shape[0], 4))
        assert np.allclose(
            gm.left_multiply_matrix(y_block), structured_matrix.T @ y_block
        )

    def test_left_multiply_matrix_matches_vector_path(self, structured_matrix, rng):
        gm = GrammarCompressedMatrix.compress(structured_matrix)
        y = rng.standard_normal(structured_matrix.shape[0])
        batched = gm.left_multiply_matrix(y[:, None]).ravel()
        assert np.allclose(batched, gm.left_multiply(y))

    def test_csrv_left_multiply_matrix(self, structured_matrix, rng):
        csrv = CSRVMatrix.from_dense(structured_matrix)
        y_block = rng.standard_normal((structured_matrix.shape[0], 3))
        assert np.allclose(
            csrv.left_multiply_matrix(y_block), structured_matrix.T @ y_block
        )

    def test_blocked_left_multiply_matrix(self, structured_matrix, rng):
        bm = BlockedMatrix.compress(structured_matrix, variant="re_ans", n_blocks=3)
        y_block = rng.standard_normal((structured_matrix.shape[0], 3))
        assert np.allclose(
            bm.left_multiply_matrix(y_block, threads=2),
            structured_matrix.T @ y_block,
        )

    def test_zero_rule_grammar(self, rng):
        matrix = rng.standard_normal((5, 4))  # unique values, no rules
        gm = GrammarCompressedMatrix.compress(matrix)
        x_block = rng.standard_normal((4, 2))
        assert np.allclose(gm.right_multiply_matrix(x_block), matrix @ x_block)


class TestAutoBlocks:
    def test_auto_never_larger_than_fixed_variants(self, rng):
        matrix = make_structured(rng, n=120, m=10)
        auto = BlockedMatrix.compress(matrix, variant="auto", n_blocks=3)
        for variant in ("csrv", "re_32", "re_iv", "re_ans"):
            fixed = BlockedMatrix.compress(matrix, variant=variant, n_blocks=3)
            assert auto.size_bytes() <= fixed.size_bytes()

    def test_auto_is_lossless(self, rng):
        matrix = make_structured(rng, n=100, m=8)
        auto = BlockedMatrix.compress(matrix, variant="auto", n_blocks=4)
        assert np.array_equal(auto.to_dense(), matrix)

    def test_auto_multiplication(self, rng):
        matrix = make_structured(rng, n=100, m=8)
        auto = BlockedMatrix.compress(matrix, variant="auto", n_blocks=4)
        x = rng.standard_normal(8)
        y = rng.standard_normal(100)
        assert np.allclose(auto.right_multiply(x, threads=2), matrix @ x)
        assert np.allclose(auto.left_multiply(y, threads=2), y @ matrix)

    def test_incompressible_block_stays_rule_free(self, rng):
        # Near-unique floats: no rules to find.  Bit packing still wins
        # over the 32-bit CSRV layout (csrv's edge is speed, not size),
        # so the blocks are rule-free grammar encodings.
        matrix = rng.standard_normal((60, 8))
        auto = BlockedMatrix.compress(matrix, variant="auto", n_blocks=2)
        for block in auto.blocks:
            assert isinstance(block, GrammarCompressedMatrix)
            assert block.n_rules <= 2
        csrv = BlockedMatrix.compress(matrix, variant="csrv", n_blocks=2)
        assert auto.size_bytes() <= csrv.size_bytes()

    def test_compressible_block_uses_grammar(self, rng):
        matrix = np.tile(rng.integers(1, 4, size=(5, 8)).astype(float), (40, 1))
        auto = BlockedMatrix.compress(matrix, variant="auto", n_blocks=2)
        assert all(
            isinstance(b, GrammarCompressedMatrix) for b in auto.blocks
        )
        assert all(b.n_rules > 0 for b in auto.blocks)

    def test_csrv_fallback_when_packing_cannot_help(self, rng):
        # Force 32-bit-wide symbols by injecting a block whose grammar
        # storage cannot undercut CSRV: verified through the selection
        # rule directly — auto must never exceed the csrv layout.
        matrix = rng.standard_normal((40, 6))
        auto = BlockedMatrix.compress(matrix, variant="auto", n_blocks=4)
        csrv = BlockedMatrix.compress(matrix, variant="csrv", n_blocks=4)
        assert auto.size_bytes() <= csrv.size_bytes()
        assert np.array_equal(auto.to_dense(), matrix)


class TestScipyInterop:
    def test_from_scipy_csr(self, structured_matrix):
        sp = sparse.csr_matrix(structured_matrix)
        csrv = CSRVMatrix.from_scipy(sp)
        assert np.array_equal(csrv.to_dense(), structured_matrix)

    def test_from_scipy_coo(self, structured_matrix):
        sp = sparse.coo_matrix(structured_matrix)
        csrv = CSRVMatrix.from_scipy(sp)
        assert csrv == CSRVMatrix.from_dense(structured_matrix)

    def test_from_scipy_then_compress(self, structured_matrix, rng):
        sp = sparse.csc_matrix(structured_matrix)
        gm = GrammarCompressedMatrix.compress(CSRVMatrix.from_scipy(sp))
        x = rng.standard_normal(structured_matrix.shape[1])
        assert np.allclose(gm.right_multiply(x), structured_matrix @ x)

"""Tests for the separator-aware RePair compressor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.csrv import CSRVMatrix
from repro.core.repair import repair_compress
from repro.errors import GrammarError


def _roundtrip(seq):
    grammar = repair_compress(np.asarray(seq))
    grammar.validate()
    assert grammar.expand().tolist() == list(seq)
    return grammar


class TestBasicCompression:
    def test_repeated_bigram(self):
        # "ab ab ab ab" -> one rule, C = N N N N.
        g = _roundtrip([1, 2, 1, 2, 1, 2, 1, 2])
        assert g.n_rules >= 1
        assert g.final.size < 8

    def test_no_repeats_no_rules(self):
        g = _roundtrip([1, 2, 3, 4, 5])
        assert g.n_rules == 0
        assert g.final.tolist() == [1, 2, 3, 4, 5]

    def test_empty_sequence(self):
        g = _roundtrip([])
        assert g.n_rules == 0
        assert g.final.size == 0

    def test_single_symbol(self):
        g = _roundtrip([7])
        assert g.n_rules == 0

    def test_nested_structure(self):
        # "abab abab" compresses hierarchically.
        g = _roundtrip([1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2])
        assert g.depth >= 2

    def test_overlapping_run_aaa(self):
        # Classic RePair overlap case.
        _roundtrip([1, 1, 1])

    def test_overlapping_run_even(self):
        g = _roundtrip([1] * 8)
        assert g.n_rules >= 1

    def test_overlapping_run_odd(self):
        _roundtrip([1] * 9)

    def test_long_mixed_runs(self):
        _roundtrip([1, 1, 1, 2, 2, 1, 1, 1, 1, 2, 2, 2, 1, 1])

    def test_most_frequent_pair_replaced_first(self):
        # (1,2) occurs 3 times, (3,4) twice: first rule must be 1 2.
        g = repair_compress(np.array([1, 2, 3, 4, 1, 2, 3, 4, 1, 2]))
        assert g.rules[0].tolist() == [1, 2]

    def test_deterministic(self):
        seq = np.random.default_rng(0).integers(1, 6, size=300)
        g1 = repair_compress(seq)
        g2 = repair_compress(seq)
        assert np.array_equal(g1.rules, g2.rules)
        assert np.array_equal(g1.final, g2.final)

    def test_tie_break_by_symbol_ids(self):
        # (1,2) and (3,4) both occur twice; the smaller pair wins.
        g = repair_compress(np.array([1, 2, 3, 4, 1, 2, 3, 4]))
        assert g.rules[0].tolist() == [1, 2]


class TestSeparatorProtection:
    def test_separator_never_in_rules(self):
        seq = np.array([1, 2, 0, 1, 2, 0, 1, 2, 0])
        g = _roundtrip(seq)
        assert g.n_rules >= 1
        assert 0 not in g.rules

    def test_pair_spanning_separator_not_formed(self):
        # (2, 1) is only adjacent across a separator: must not compress.
        seq = np.array([1, 2, 0, 1, 2, 0])
        g = repair_compress(seq)
        for a, b in g.rules:
            assert (a, b) == (1, 2)

    def test_custom_forbidden_symbol(self):
        seq = np.array([1, 9, 1, 9, 1, 9])
        g = repair_compress(seq, forbidden=9)
        g.validate()
        assert 9 not in g.rules
        assert g.expand().tolist() == seq.tolist()

    def test_all_separators(self):
        g = _roundtrip([0, 0, 0, 0])
        assert g.n_rules == 0


class TestOptions:
    def test_min_frequency_threshold(self):
        # Pair occurs twice: excluded at min_frequency=3.
        seq = np.array([1, 2, 1, 2])
        assert repair_compress(seq, min_frequency=3).n_rules == 0
        assert repair_compress(seq, min_frequency=2).n_rules == 1

    def test_min_frequency_below_two_rejected(self):
        with pytest.raises(GrammarError):
            repair_compress(np.array([1, 2]), min_frequency=1)

    def test_max_rules_cap(self):
        rng = np.random.default_rng(1)
        seq = rng.integers(1, 4, size=500)
        g = repair_compress(seq, max_rules=3)
        g.validate()
        assert g.n_rules == 3
        assert g.expand().tolist() == seq.tolist()

    def test_negative_symbols_rejected(self):
        with pytest.raises(GrammarError):
            repair_compress(np.array([1, -2]))

    def test_2d_rejected(self):
        with pytest.raises(GrammarError):
            repair_compress(np.ones((2, 2), dtype=int))


class TestCompressionQuality:
    def test_repetitive_input_compresses_well(self):
        seq = np.tile([3, 1, 4, 1, 5, 9, 2, 6], 100)
        g = repair_compress(seq)
        assert g.size < seq.size / 4

    def test_random_input_compresses_poorly(self):
        rng = np.random.default_rng(2)
        seq = rng.integers(1, 10_000, size=2000)
        g = repair_compress(seq)
        # Few repeated bigrams: grammar about as large as the input.
        assert g.size > 0.8 * seq.size

    def test_csrv_structure_respected(self, structured_matrix):
        csrv = CSRVMatrix.from_dense(structured_matrix)
        g = repair_compress(csrv.s)
        g.validate()
        # Separators survive verbatim: same row count.
        assert g.n_rows == structured_matrix.shape[0]
        assert np.array_equal(g.expand(), csrv.s)

    def test_nonterminal_ids_compact(self):
        seq = np.array([5, 6, 5, 6])
        g = repair_compress(seq)
        assert g.nt_base == 7
        assert g.rules.max() < g.nt_base + g.n_rules


class TestBatchStrategy:
    """The vectorised ``strategy="batch"`` rounds (same contracts)."""

    def _roundtrip(self, seq, **kwargs):
        grammar = repair_compress(np.asarray(seq), strategy="batch", **kwargs)
        grammar.validate()
        assert grammar.expand().tolist() == list(seq)
        return grammar

    def test_unknown_strategy_rejected(self):
        with pytest.raises(GrammarError):
            repair_compress(np.array([1, 2, 1, 2]), strategy="heap")

    def test_repeated_bigram(self):
        g = self._roundtrip([1, 2, 1, 2, 1, 2, 1, 2])
        assert g.n_rules >= 1
        assert g.final.size < 8

    def test_no_repeats_no_rules(self):
        g = self._roundtrip([1, 2, 3, 4, 5])
        assert g.n_rules == 0

    def test_empty_and_single(self):
        assert self._roundtrip([]).n_rules == 0
        assert self._roundtrip([7]).n_rules == 0

    def test_overlapping_runs(self):
        for n in (3, 8, 9, 17):
            self._roundtrip([1] * n)
        self._roundtrip([1, 1, 1, 2, 2, 1, 1, 1, 1, 2, 2, 2, 1, 1])

    def test_separator_never_in_rules(self):
        g = self._roundtrip([1, 2, 0, 1, 2, 0, 1, 2, 0])
        assert g.n_rules >= 1
        assert 0 not in g.rules

    def test_custom_forbidden_symbol(self):
        seq = np.array([1, 9, 1, 9, 1, 9])
        g = repair_compress(seq, forbidden=9, strategy="batch")
        g.validate()
        assert 9 not in g.rules
        assert g.expand().tolist() == seq.tolist()

    def test_max_rules_cap(self):
        rng = np.random.default_rng(1)
        seq = rng.integers(1, 4, size=500)
        g = repair_compress(seq, max_rules=3, strategy="batch")
        g.validate()
        assert g.n_rules == 3
        assert g.expand().tolist() == seq.tolist()

    def test_min_frequency_threshold(self):
        seq = np.array([1, 2, 1, 2])
        assert repair_compress(seq, min_frequency=3, strategy="batch").n_rules == 0
        assert repair_compress(seq, min_frequency=2, strategy="batch").n_rules == 1

    def test_deterministic(self):
        seq = np.random.default_rng(0).integers(1, 6, size=300)
        g1 = repair_compress(seq, strategy="batch")
        g2 = repair_compress(seq, strategy="batch")
        assert np.array_equal(g1.rules, g2.rules)
        assert np.array_equal(g1.final, g2.final)

    def test_most_frequent_pair_first(self):
        g = repair_compress(
            np.array([1, 2, 3, 4, 1, 2, 3, 4, 1, 2]), strategy="batch"
        )
        assert g.rules[0].tolist() == [1, 2]

    def test_input_not_mutated(self):
        seq = np.array([1, 2, 1, 2, 1, 2], dtype=np.int64)
        copy = seq.copy()
        repair_compress(seq, strategy="batch")
        assert np.array_equal(seq, copy)

    def test_oversized_symbol_ids_rejected(self):
        # a*stride + b would overflow int64 for symbol ids >= ~3e9;
        # batch refuses instead of silently merging distinct pairs.
        huge = 4_000_000_000
        seq = np.array([huge, 1, huge, 1], dtype=np.int64)
        with pytest.raises(GrammarError, match="batch"):
            repair_compress(seq, strategy="batch")
        # The exact strategy still handles the same input.
        g = repair_compress(seq)
        assert g.expand().tolist() == seq.tolist()

    def test_size_close_to_exact_on_structured_input(self, structured_matrix):
        csrv = CSRVMatrix.from_dense(structured_matrix)
        exact = repair_compress(csrv.s)
        batch = repair_compress(csrv.s, strategy="batch")
        assert np.array_equal(batch.expand(), csrv.s)
        assert batch.n_rows == structured_matrix.shape[0]
        # Same ballpark grammar (the profile-level 2% ratio bound is
        # asserted in tests/formats/test_strategy_equivalence.py).
        assert batch.size <= 1.15 * exact.size


@settings(max_examples=80, deadline=None)
@given(
    seq=st.lists(st.integers(min_value=0, max_value=6), min_size=0, max_size=120)
)
def test_property_lossless(seq):
    grammar = repair_compress(np.asarray(seq, dtype=np.int64))
    grammar.validate()
    assert grammar.expand().tolist() == seq
    assert 0 not in grammar.rules


@settings(max_examples=80, deadline=None)
@given(
    seq=st.lists(st.integers(min_value=0, max_value=6), min_size=0, max_size=120)
)
def test_property_lossless_batch(seq):
    grammar = repair_compress(np.asarray(seq, dtype=np.int64), strategy="batch")
    grammar.validate()
    assert grammar.expand().tolist() == seq
    assert 0 not in grammar.rules


@settings(max_examples=30, deadline=None)
@given(
    seq=st.lists(st.integers(min_value=1, max_value=3), min_size=10, max_size=200),
    cap=st.integers(min_value=0, max_value=10),
)
def test_property_max_rules_respected_batch(seq, cap):
    grammar = repair_compress(
        np.asarray(seq, dtype=np.int64), max_rules=cap, strategy="batch"
    )
    grammar.validate()
    assert grammar.n_rules <= cap
    assert grammar.expand().tolist() == seq


@settings(max_examples=30, deadline=None)
@given(
    seq=st.lists(st.integers(min_value=1, max_value=3), min_size=10, max_size=200),
    cap=st.integers(min_value=0, max_value=10),
)
def test_property_max_rules_respected(seq, cap):
    grammar = repair_compress(np.asarray(seq, dtype=np.int64), max_rules=cap)
    grammar.validate()
    assert grammar.n_rules <= cap
    assert grammar.expand().tolist() == seq

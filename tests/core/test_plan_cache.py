"""MvmPlan extraction, the fingerprint-keyed PlanCache, and retention."""

import numpy as np
import pytest

import repro
from repro.core.csrv import CSRVMatrix
from repro.core.gcm import GrammarCompressedMatrix, plan_cache
from repro.core.multiply import MvmEngine, MvmPlan, PlanCache
from repro.core.repair import repair_compress
from repro.errors import MatrixFormatError
from tests.conftest import make_structured


@pytest.fixture
def dense():
    return make_structured(np.random.default_rng(99), n=50, m=9, pool=4)


@pytest.fixture
def grammar(dense):
    return repair_compress(CSRVMatrix.from_dense(dense).s)


class TestMvmPlan:
    def test_engine_from_plan_matches_engine_from_grammar(self, dense, grammar):
        csrv = CSRVMatrix.from_dense(dense)
        n_cols = dense.shape[1]
        direct = MvmEngine(grammar, n_cols)
        plan = MvmPlan.from_grammar(grammar, n_cols)
        via_plan = MvmEngine.from_plan(plan)
        x = np.random.default_rng(1).standard_normal(n_cols)
        y = np.random.default_rng(2).standard_normal(dense.shape[0])
        np.testing.assert_array_equal(
            direct.right(csrv.values, x), via_plan.right(csrv.values, x)
        )
        np.testing.assert_array_equal(
            direct.left(csrv.values, y), via_plan.left(csrv.values, y)
        )
        assert direct.plan.n_rules == plan.n_rules

    def test_plan_nbytes_positive(self, grammar, dense):
        plan = MvmPlan.from_grammar(grammar, dense.shape[1])
        assert plan.nbytes > 0

    def test_engine_requires_grammar_or_plan(self):
        with pytest.raises(MatrixFormatError):
            MvmEngine(None)


class TestPlanCache:
    def test_get_put_and_counters(self, grammar, dense):
        cache = PlanCache(max_plans=4)
        plan = MvmPlan.from_grammar(grammar, dense.shape[1])
        assert cache.get("k") is None
        cache.put("k", plan)
        assert cache.get("k") is plan
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert cache.nbytes() == plan.nbytes

    def test_lru_bound(self, grammar, dense):
        cache = PlanCache(max_plans=2)
        plan = MvmPlan.from_grammar(grammar, dense.shape[1])
        for key in ("a", "b", "c"):
            cache.put(key, plan)
        assert len(cache) == 2
        assert "a" not in cache and "c" in cache

    def test_invalid_bound_rejected(self):
        with pytest.raises(MatrixFormatError):
            PlanCache(max_plans=0)


class TestGrammarFingerprint:
    def test_equal_grammars_share_fingerprint(self, dense):
        s = CSRVMatrix.from_dense(dense).s
        assert (
            repair_compress(s).fingerprint() == repair_compress(s).fingerprint()
        )

    def test_different_grammars_differ(self, dense, grammar):
        other = repair_compress(
            CSRVMatrix.from_dense(dense).s, strategy="batch"
        )
        if np.array_equal(other.rules, grammar.rules) and np.array_equal(
            other.final, grammar.final
        ):
            pytest.skip("batch happened to derive the identical grammar")
        assert other.fingerprint() != grammar.fingerprint()

    def test_trailing_zero_rows_change_storage_fingerprint(self):
        """Regression: bit-packed words are zero-padded, so a matrix
        plus an extra all-zero row can produce byte-identical re_iv
        words (the trailing separator symbols pack to zero bits).  The
        logical lengths must disambiguate, or the plan cache would
        serve a wrong-shaped plan."""
        a = np.array([[1.5, 2.5, 0.0, 1.5], [2.5, 1.5, 1.5, 0.0], [1.5, 2.5, 0.0, 1.5]])
        b = np.vstack([a, np.zeros((1, 4))])
        ma = repro.compress(a, format="re_iv")
        mb = repro.compress(b, format="re_iv")
        assert ma.grammar_fingerprint() != mb.grammar_fingerprint()
        for m in (ma, mb):
            m.enable_plan_retention(True)
        x = np.arange(4, dtype=np.float64)
        np.testing.assert_allclose(ma.right_multiply(x), a @ x)
        np.testing.assert_allclose(mb.right_multiply(x), b @ x)

    def test_storage_fingerprint_stable_without_decode(self, dense):
        a = repro.compress(dense, format="re_iv")
        b = repro.compress(dense, format="re_iv")
        assert a.grammar_fingerprint() == b.grammar_fingerprint()
        # Different variant -> different storage bytes -> different key
        # (documented: costs a duplicate entry, never a wrong plan).
        c = repro.compress(dense, format="re_ans")
        assert c.grammar_fingerprint() != a.grammar_fingerprint()


class TestPlanRetention:
    @pytest.mark.parametrize("variant", ["re_iv", "re_ans"])
    def test_retention_reuses_engine_and_stays_correct(self, dense, variant):
        m = repro.compress(dense, format=variant)
        x = np.random.default_rng(3).standard_normal(dense.shape[1])
        expect = dense @ x
        assert not m.plan_retained
        # Default: a fresh engine per call.
        assert m._get_engine() is not m._get_engine()
        assert m.enable_plan_retention(True)
        assert m.plan_retained
        engine = m._get_engine()
        assert m._get_engine() is engine
        np.testing.assert_allclose(m.right_multiply(x), expect)
        # Turning retention off drops the cached engine again.
        m.enable_plan_retention(False)
        assert not m.plan_retained
        assert m._get_engine() is not engine
        np.testing.assert_allclose(m.right_multiply(x), expect)

    def test_re32_always_retains(self, dense):
        m = repro.compress(dense, format="re_32")
        assert m.plan_retained
        assert m.enable_plan_retention(True)
        assert m._get_engine() is m._get_engine()

    def test_identical_matrices_share_one_plan_build(self, dense):
        a = repro.compress(dense, format="re_iv")
        b = repro.compress(dense, format="re_iv")
        for m in (a, b):
            m.enable_plan_retention(True)
        a._get_engine()
        hits = plan_cache().hits
        b._get_engine()
        assert plan_cache().hits == hits + 1
        assert a._get_engine().plan is b._get_engine().plan

    @pytest.mark.parametrize("variant", ["re_iv", "re_ans"])
    def test_overhead_charged_only_when_retained(self, dense, variant):
        m = repro.compress(dense, format=variant)
        assert m.resident_overhead_bytes() == 0
        m.enable_plan_retention(True)
        charged = m.resident_overhead_bytes()
        assert charged == 8 * (m.c_length + 6 * m.n_rules)
        m.enable_plan_retention(False)
        assert m.resident_overhead_bytes() == 0

    def test_blocked_forwards_retention(self, dense):
        blocked = repro.compress(
            dense, format="blocked", variant="re_ans", n_blocks=2
        )
        assert blocked.enable_plan_retention(True)
        assert all(b.plan_retained for b in blocked.blocks)
        assert blocked.resident_overhead_bytes() == sum(
            b.resident_overhead_bytes() for b in blocked.blocks
        )
        x = np.random.default_rng(5).standard_normal(dense.shape[1])
        np.testing.assert_allclose(blocked.right_multiply(x), dense @ x)

    def test_csrv_blocked_retention_is_a_noop(self, dense):
        blocked = repro.compress(
            dense, format="blocked", variant="csrv", n_blocks=2
        )
        assert blocked.enable_plan_retention(True) is False

    def test_base_format_hook_returns_false(self, dense):
        m = repro.compress(dense, format="csr")
        assert m.enable_plan_retention() is False
        m.release_retained_plans()  # base no-op

    def test_release_drops_shared_cache_entry(self, dense):
        m = repro.compress(dense, format="re_iv")
        m.enable_plan_retention(True)
        m._get_engine()
        key = m.grammar_fingerprint()
        assert key in plan_cache()
        m.release_retained_plans()
        assert key not in plan_cache()
        # Still retained: the next multiply rebuilds and re-caches.
        x = np.ones(dense.shape[1])
        np.testing.assert_allclose(m.right_multiply(x), dense @ x)
        assert key in plan_cache()


class TestCompressStrategyPlumbing:
    def test_gcm_compress_accepts_strategy(self, dense):
        m = GrammarCompressedMatrix.compress(dense, variant="re_iv", strategy="batch")
        np.testing.assert_array_equal(m.to_dense(), dense)

    def test_registry_compress_forwards_strategy(self, dense):
        m = repro.compress(dense, format="re_ans", strategy="batch")
        np.testing.assert_array_equal(m.to_dense(), dense)

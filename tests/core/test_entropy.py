"""Tests for empirical order-k entropy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.csrv import CSRVMatrix
from repro.core.entropy import empirical_entropy, entropy_bound_bits
from repro.core.repair import repair_compress
from repro.errors import MatrixFormatError


class TestH0:
    def test_uniform_two_symbols(self):
        assert empirical_entropy(np.array([0, 1, 0, 1])) == pytest.approx(1.0)

    def test_single_symbol_zero_entropy(self):
        assert empirical_entropy(np.array([7] * 100)) == pytest.approx(0.0)

    def test_uniform_four_symbols(self):
        assert empirical_entropy(np.array([0, 1, 2, 3])) == pytest.approx(2.0)

    def test_skewed_below_uniform(self):
        seq = np.array([0] * 90 + [1] * 10)
        assert 0 < empirical_entropy(seq) < 1.0

    def test_empty_sequence(self):
        assert empirical_entropy(np.array([], dtype=int)) == 0.0

    def test_upper_bound_log_sigma(self):
        rng = np.random.default_rng(0)
        seq = rng.integers(0, 16, size=5000)
        assert empirical_entropy(seq) <= 4.0 + 1e-9


class TestHk:
    def test_perfectly_predictable_context(self):
        # Alternating sequence: knowing 1 symbol determines the next.
        seq = np.array([0, 1] * 50)
        assert empirical_entropy(seq, k=1) == pytest.approx(0.0)

    def test_hk_never_exceeds_h0(self):
        rng = np.random.default_rng(1)
        seq = rng.integers(0, 8, size=3000)
        h0 = empirical_entropy(seq)
        for k in (1, 2, 3):
            assert empirical_entropy(seq, k) <= h0 + 1e-9

    def test_hk_monotone_decreasing_on_markov_input(self):
        # A periodic sequence: longer contexts can only help.
        seq = np.array([0, 1, 2, 0, 1, 2] * 60)
        h = [empirical_entropy(seq, k) for k in range(4)]
        assert h[0] > h[1] >= h[2] >= h[3]

    def test_k_larger_than_sequence(self):
        assert empirical_entropy(np.array([1, 2, 3]), k=10) == 0.0

    def test_negative_k_rejected(self):
        with pytest.raises(MatrixFormatError):
            empirical_entropy(np.array([1, 2]), k=-1)

    def test_known_markov_value(self):
        # 'aab' repeated: after context 'a' the follower is a or b with
        # equal probability 1/2 -> those positions contribute 1 bit;
        # after 'b' always 'a' (0 bits).  H_1 = (2/3)*1 = 0.666...
        seq = np.array([0, 0, 1] * 200)
        h1 = empirical_entropy(seq, k=1)
        assert h1 == pytest.approx(2.0 / 3.0, rel=0.02)


class TestCompressionBound:
    def test_repair_size_tracks_entropy(self, structured_matrix):
        # Sanity check of the paper's bound direction: the grammar for a
        # low-entropy CSRV sequence is far below the raw 32-bit size.
        csrv = CSRVMatrix.from_dense(np.tile(structured_matrix, (5, 1)))
        grammar = repair_compress(csrv.s)
        grammar_bits = 32 * grammar.size
        raw_bits = 32 * csrv.s.size
        assert grammar_bits < raw_bits
        # And H_k decreases with k, so the bound only gets tighter.
        assert entropy_bound_bits(csrv.s, 2) <= entropy_bound_bits(csrv.s, 0) + 1e-6

    def test_bound_bits_scales_with_length(self):
        seq = np.array([0, 1] * 100)
        assert entropy_bound_bits(seq) == pytest.approx(200.0)


@settings(max_examples=40, deadline=None)
@given(
    seq=st.lists(st.integers(min_value=0, max_value=5), min_size=2, max_size=300),
    k=st.integers(min_value=0, max_value=3),
)
def test_property_entropy_bounds(seq, k):
    arr = np.asarray(seq)
    h = empirical_entropy(arr, k)
    assert 0.0 <= h <= np.log2(len(set(seq))) + 1e-9 if len(set(seq)) > 1 else h == 0.0

"""Tests for the level-scheduled MVM engine (Theorems 3.4 / 3.10)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.csrv import CSRVMatrix
from repro.core.grammar import Grammar
from repro.core.multiply import MvmEngine
from repro.core.repair import repair_compress
from repro.errors import MatrixFormatError


def _engine_for(matrix):
    csrv = CSRVMatrix.from_dense(matrix)
    grammar = repair_compress(csrv.s)
    return MvmEngine(grammar, matrix.shape[1]), csrv.values


class TestRight:
    def test_matches_dense(self, structured_matrix, rng):
        engine, values = _engine_for(structured_matrix)
        x = rng.standard_normal(structured_matrix.shape[1])
        assert np.allclose(engine.right(values, x), structured_matrix @ x)

    def test_paper_example(self, paper_matrix):
        engine, values = _engine_for(paper_matrix)
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        assert np.allclose(engine.right(values, x), paper_matrix @ x)

    def test_rule_free_grammar(self):
        matrix = np.array([[1.0, 2.0], [3.0, 4.0]])
        engine, values = _engine_for(matrix)
        assert engine.n_rules == 0
        x = np.array([1.0, -1.0])
        assert np.allclose(engine.right(values, x), matrix @ x)

    def test_wrong_x_length(self, paper_matrix):
        engine, values = _engine_for(paper_matrix)
        with pytest.raises(MatrixFormatError):
            engine.right(values, np.ones(3))

    def test_zero_rows_tail(self):
        # Trailing all-zero rows still produce y entries.
        matrix = np.array([[1.0, 1.0], [0.0, 0.0], [0.0, 0.0]])
        engine, values = _engine_for(matrix)
        y = engine.right(values, np.array([2.0, 3.0]))
        assert np.allclose(y, [5.0, 0.0, 0.0])


class TestLeft:
    def test_matches_dense(self, structured_matrix, rng):
        engine, values = _engine_for(structured_matrix)
        y = rng.standard_normal(structured_matrix.shape[0])
        assert np.allclose(engine.left(values, y), y @ structured_matrix)

    def test_paper_example(self, paper_matrix):
        engine, values = _engine_for(paper_matrix)
        y = np.arange(6, dtype=np.float64) + 1
        assert np.allclose(engine.left(values, y), y @ paper_matrix)

    def test_rule_free_grammar(self):
        matrix = np.array([[1.0, 2.0], [3.0, 4.0]])
        engine, values = _engine_for(matrix)
        y = np.array([1.0, 2.0])
        assert np.allclose(engine.left(values, y), y @ matrix)

    def test_wrong_y_length(self, paper_matrix):
        engine, values = _engine_for(paper_matrix)
        with pytest.raises(MatrixFormatError):
            engine.left(values, np.ones(2))

    def test_shared_subtree_counted_per_occurrence(self):
        # A rule used by many rows must contribute sum over those rows
        # (Lemma 3.9).  Identical rows force heavy rule sharing.
        matrix = np.tile(np.array([[1.5, 2.5, 3.5, 4.5]]), (8, 1))
        engine, values = _engine_for(matrix)
        y = np.arange(8, dtype=np.float64)
        assert np.allclose(engine.left(values, y), y @ matrix)


class TestEngineStructure:
    def test_row_count_from_final_string(self, structured_matrix):
        engine, _ = _engine_for(structured_matrix)
        assert engine.n_rows == structured_matrix.shape[0]

    def test_engine_reusable_across_vectors(self, paper_matrix, rng):
        engine, values = _engine_for(paper_matrix)
        for _ in range(5):
            x = rng.standard_normal(5)
            assert np.allclose(engine.right(values, x), paper_matrix @ x)

    def test_deep_chain_grammar(self):
        # A long chain rule exercises many levels.
        seq = np.tile([1, 2], 64).tolist() + [0]
        grammar = repair_compress(np.asarray(seq))
        # m=2 -> terminal codes 1,2 decode to (l=0, j=0/1).
        engine = MvmEngine(grammar, 2)
        values = np.array([10.0])
        x = np.array([1.0, 3.0])
        # Row contains 64 copies of pairs <0,0><0,1>: y = 64*(10*1+10*3).
        assert np.allclose(engine.right(values, x), [64 * 40.0])

    def test_manual_grammar_right_and_left(self):
        # Hand-built grammar over a 2-column matrix:
        # terminals: 1 = <0,0> (V[0] at col 0), 2 = <0,1>.
        # N0 -> 1 2 ; C = N0 $ N0 $  (two identical rows [v, v]).
        grammar = Grammar(
            nt_base=3, rules=np.array([[1, 2]]), final=np.array([3, 0, 3, 0])
        )
        engine = MvmEngine(grammar, 2)
        values = np.array([2.0])
        x = np.array([3.0, 4.0])
        assert np.allclose(engine.right(values, x), [14.0, 14.0])
        y = np.array([1.0, 10.0])
        assert np.allclose(engine.left(values, y), [22.0, 22.0])


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=16),
    m=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=500),
)
def test_property_engine_equals_dense(n, m, seed):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(0, 4, size=(n, m)).astype(np.float64) * 1.5
    csrv = CSRVMatrix.from_dense(matrix)
    engine = MvmEngine(repair_compress(csrv.s), m)
    x = rng.standard_normal(m)
    y = rng.standard_normal(n)
    assert np.allclose(engine.right(csrv.values, x), matrix @ x)
    assert np.allclose(engine.left(csrv.values, y), y @ matrix)

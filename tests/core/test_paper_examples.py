"""Reproduction of the paper's worked examples (Figures 1 and 2).

These tests pin the library's semantics to the exact objects the paper
shows: the CSRV encoding of the 6×5 example matrix (Fig. 1), the grammar
of Fig. 2 evaluated with both multiplication algorithms, and the
rows/sum bookkeeping of Definitions 3.5–3.8.
"""

import numpy as np
import pytest

from repro.core.csrv import CSRVMatrix
from repro.core.grammar import Grammar
from repro.core.multiply import MvmEngine


@pytest.fixture
def figure1_csrv(paper_matrix):
    return CSRVMatrix.from_dense(paper_matrix)


class TestFigure1:
    def test_value_array(self, figure1_csrv):
        assert np.allclose(figure1_csrv.values, [1.2, 1.7, 2.3, 3.4, 4.5, 5.6])

    def test_full_sequence(self, figure1_csrv):
        # Figure 1 uses 1-based ⟨ℓ,j⟩; our codes are 1 + (ℓ-1)*5 + (j-1).
        def pair(l1, j1):
            return 1 + (l1 - 1) * 5 + (j1 - 1)

        expected = [
            pair(1, 1), pair(4, 2), pair(6, 3), pair(3, 5), 0,
            pair(3, 1), pair(3, 3), pair(5, 4), pair(2, 5), 0,
            pair(1, 1), pair(4, 2), pair(3, 3), pair(5, 4), 0,
            pair(4, 1), pair(6, 3), pair(3, 5), 0,
            pair(3, 1), pair(3, 3), pair(5, 4), 0,
            pair(1, 1), pair(4, 2), pair(3, 3), pair(5, 4), pair(4, 5), 0,
        ]
        assert figure1_csrv.s.tolist() == expected

    def test_same_value_different_column_distinct_codes(self, figure1_csrv):
        # Fig. 1 caption: 2.3 in column 1 is ⟨3,1⟩, in column 3 is ⟨3,3⟩.
        s = set(figure1_csrv.s.tolist())
        assert (1 + 2 * 5 + 0) in s  # ⟨3,1⟩ zero-based (2, 0)
        assert (1 + 2 * 5 + 2) in s  # ⟨3,3⟩ zero-based (2, 2)

    def test_rows_of_pair_11(self, figure1_csrv, paper_matrix):
        # Definition 3.5 example: rows(⟨1,1⟩) = {1, 3, 6}.
        rows = [
            r + 1
            for r in range(6)
            if paper_matrix[r, 0] == figure1_csrv.values[0]
        ]
        assert rows == [1, 3, 6]

    def test_rows_of_pair_31(self, figure1_csrv, paper_matrix):
        # rows(⟨3,1⟩) = {2, 5}.
        rows = [
            r + 1
            for r in range(6)
            if paper_matrix[r, 0] == figure1_csrv.values[2]
        ]
        assert rows == [2, 5]


@pytest.fixture
def figure2_grammar():
    """The exact grammar of Figure 2, translated to integer symbols.

    Terminal ⟨ℓ,j⟩ (1-based) = 1 + (ℓ-1)*5 + (j-1); nonterminal N_i
    (1-based in the paper) = nt_base + (i-1) with nt_base = 31
    (= max code 1+5*5+4 for a 6-value, 5-column matrix).
    """
    def pair(l1, j1):
        return 1 + (l1 - 1) * 5 + (j1 - 1)

    nt = 31

    def n(i):
        return nt + i - 1

    rules = np.array(
        [
            [pair(3, 3), pair(5, 4)],   # N1
            [pair(1, 1), pair(4, 2)],   # N2
            [pair(3, 1), n(1)],         # N3
            [pair(6, 3), pair(3, 5)],   # N4
            [n(2), n(4)],               # N5
            [n(3), pair(2, 5)],         # N6
            [n(2), n(1)],               # N7
            [pair(4, 1), n(4)],         # N8
            [n(7), pair(4, 5)],         # N9
        ]
    )
    final = np.array([n(5), 0, n(6), 0, n(7), 0, n(8), 0, n(3), 0, n(9), 0])
    return Grammar(nt_base=nt, rules=rules, final=final)


class TestFigure2:
    def test_grammar_is_valid(self, figure2_grammar):
        figure2_grammar.validate()

    def test_expands_to_figure1_sequence(self, figure2_grammar, paper_matrix):
        csrv = CSRVMatrix.from_dense(paper_matrix)
        assert np.array_equal(figure2_grammar.expand(), csrv.s)

    def test_right_multiplication_theorem_3_4(self, figure2_grammar, paper_matrix):
        values = np.array([1.2, 1.7, 2.3, 3.4, 4.5, 5.6])
        engine = MvmEngine(figure2_grammar, 5)
        x = np.array([0.5, -1.0, 2.0, 3.0, 1.0])
        assert np.allclose(engine.right(values, x), paper_matrix @ x)

    def test_left_multiplication_theorem_3_10(self, figure2_grammar, paper_matrix):
        values = np.array([1.2, 1.7, 2.3, 3.4, 4.5, 5.6])
        engine = MvmEngine(figure2_grammar, 5)
        y = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        assert np.allclose(engine.left(values, y), y @ paper_matrix)

    def test_eval_x_of_nonterminals_lemma_3_3(self, figure2_grammar, paper_matrix):
        # Lemma 3.3: y[r] = eval_x(N_{i_r}) — the engine's row outputs
        # must equal the expansions' dot products row by row.
        values = np.array([1.2, 1.7, 2.3, 3.4, 4.5, 5.6])
        engine = MvmEngine(figure2_grammar, 5)
        x = np.arange(5, dtype=np.float64) + 1
        y = engine.right(values, x)
        for r in range(6):
            assert y[r] == pytest.approx(float(paper_matrix[r] @ x))

    def test_csm_example_rpnz_12(self, paper_matrix):
        # Section 5.1 example: RPNZ_{1,2} = 2 (⟨1.2, 3.4⟩ repeats twice
        # beyond its first occurrence), CSM[1][2] = 2/6.
        from repro.reorder.similarity import column_similarity_matrix

        csm = column_similarity_matrix(paper_matrix)
        assert csm[0, 1] == pytest.approx(2.0 / 6.0)
        assert csm[1, 0] == csm[0, 1]

"""Tests for CSRVMatrix.with_column_order (shared-V block reordering)."""

import numpy as np
import pytest

from repro.core.csrv import CSRVMatrix
from repro.errors import MatrixFormatError


class TestWithColumnOrder:
    def test_matches_from_dense_layout(self, paper_matrix, rng):
        # Same permutation through both paths must give the same S.
        perm = rng.permutation(5)
        via_dense = CSRVMatrix.from_dense(paper_matrix, column_order=perm)
        via_relayout = CSRVMatrix.from_dense(paper_matrix).with_column_order(perm)
        assert via_dense == via_relayout

    def test_values_object_shared(self, paper_matrix):
        csrv = CSRVMatrix.from_dense(paper_matrix)
        reordered = csrv.with_column_order([4, 3, 2, 1, 0])
        assert np.shares_memory(csrv.values, reordered.values)

    def test_semantics_unchanged(self, structured_matrix, rng):
        csrv = CSRVMatrix.from_dense(structured_matrix)
        reordered = csrv.with_column_order(rng.permutation(structured_matrix.shape[1]))
        assert np.array_equal(reordered.to_dense(), structured_matrix)
        x = rng.standard_normal(structured_matrix.shape[1])
        assert np.allclose(reordered.right_multiply(x), csrv.right_multiply(x))

    def test_identity_is_noop(self, structured_matrix):
        csrv = CSRVMatrix.from_dense(structured_matrix)
        assert csrv.with_column_order(np.arange(structured_matrix.shape[1])) == csrv

    def test_composes_with_split(self, structured_matrix, rng):
        # Reordering a split block keeps the block's row range intact.
        csrv = CSRVMatrix.from_dense(structured_matrix)
        blocks = csrv.split_rows(3)
        perm = rng.permutation(structured_matrix.shape[1])
        reordered = blocks[1].with_column_order(perm)
        assert np.array_equal(reordered.to_dense(), blocks[1].to_dense())

    def test_invalid_permutation(self, paper_matrix):
        csrv = CSRVMatrix.from_dense(paper_matrix)
        with pytest.raises(MatrixFormatError):
            csrv.with_column_order([0, 1, 2])
        with pytest.raises(MatrixFormatError):
            csrv.with_column_order([0, 0, 1, 2, 3])

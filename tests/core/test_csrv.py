"""Tests for the CSRV representation (Section 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.csrv import ROW_SEPARATOR, CSRVMatrix
from repro.errors import MatrixFormatError


class TestConstruction:
    def test_paper_example_values_sorted(self, paper_matrix):
        csrv = CSRVMatrix.from_dense(paper_matrix)
        # Figure 1: V = [1.2, 1.7, 2.3, 3.4, 4.5, 5.6]
        assert np.allclose(csrv.values, [1.2, 1.7, 2.3, 3.4, 4.5, 5.6])

    def test_paper_example_sequence_length(self, paper_matrix):
        csrv = CSRVMatrix.from_dense(paper_matrix)
        # t = 23 non-zeros + 6 separators.
        assert csrv.s.size == 23 + 6
        assert csrv.nnz == 23

    def test_paper_example_first_row_codes(self, paper_matrix):
        csrv = CSRVMatrix.from_dense(paper_matrix)
        m = 5
        # Row 1 of Fig. 1: ⟨1,1⟩⟨4,2⟩⟨6,3⟩⟨3,5⟩$ in 1-based paper
        # notation = (ℓ,j) zero-based (0,0)(3,1)(5,2)(2,4).
        expected = [1 + 0 * m + 0, 1 + 3 * m + 1, 1 + 5 * m + 2, 1 + 2 * m + 4]
        assert csrv.s[:4].tolist() == expected
        assert csrv.s[4] == ROW_SEPARATOR

    def test_separator_count_equals_rows(self, structured_matrix):
        csrv = CSRVMatrix.from_dense(structured_matrix)
        n_sep = int(np.count_nonzero(csrv.s == ROW_SEPARATOR))
        assert n_sep == structured_matrix.shape[0]

    def test_roundtrip_dense(self, structured_matrix):
        csrv = CSRVMatrix.from_dense(structured_matrix)
        assert np.array_equal(csrv.to_dense(), structured_matrix)

    def test_all_zero_matrix(self):
        matrix = np.zeros((4, 3))
        csrv = CSRVMatrix.from_dense(matrix)
        assert csrv.nnz == 0
        assert csrv.s.tolist() == [0, 0, 0, 0]
        assert np.array_equal(csrv.to_dense(), matrix)

    def test_all_zero_rows_interleaved(self):
        matrix = np.array([[0.0, 1.0], [0.0, 0.0], [2.0, 0.0]])
        csrv = CSRVMatrix.from_dense(matrix)
        assert np.array_equal(csrv.to_dense(), matrix)

    def test_single_cell(self):
        matrix = np.array([[3.5]])
        csrv = CSRVMatrix.from_dense(matrix)
        assert csrv.s.tolist() == [1, 0]

    def test_rejects_1d(self):
        with pytest.raises(MatrixFormatError):
            CSRVMatrix.from_dense(np.ones(5))

    def test_from_arrays_matches_from_dense(self, structured_matrix):
        rows, cols = np.nonzero(structured_matrix)
        vals = structured_matrix[rows, cols]
        a = CSRVMatrix.from_arrays(rows, cols, vals, structured_matrix.shape)
        b = CSRVMatrix.from_dense(structured_matrix)
        assert a == b

    def test_from_arrays_drops_explicit_zeros(self):
        csrv = CSRVMatrix.from_arrays(
            np.array([0, 0]), np.array([0, 1]), np.array([1.0, 0.0]), (1, 2)
        )
        assert csrv.nnz == 1

    def test_from_arrays_validates_indices(self):
        with pytest.raises(MatrixFormatError):
            CSRVMatrix.from_arrays(
                np.array([5]), np.array([0]), np.array([1.0]), (2, 2)
            )
        with pytest.raises(MatrixFormatError):
            CSRVMatrix.from_arrays(
                np.array([0]), np.array([9]), np.array([1.0]), (2, 2)
            )

    def test_from_arrays_shape_mismatch(self):
        with pytest.raises(MatrixFormatError):
            CSRVMatrix.from_arrays(
                np.array([0, 1]), np.array([0]), np.array([1.0]), (2, 2)
            )

    def test_invariant_checked_on_raw_construction(self):
        with pytest.raises(MatrixFormatError):
            CSRVMatrix(np.array([0, 0]), np.array([1.0]), (3, 2))  # 2 seps, 3 rows
        with pytest.raises(MatrixFormatError):
            CSRVMatrix(np.array([99, 0]), np.array([1.0]), (1, 2))  # bad code


class TestColumnOrder:
    def test_reordering_preserves_decoded_matrix(self, paper_matrix):
        perm = np.array([4, 2, 0, 1, 3])
        csrv = CSRVMatrix.from_dense(paper_matrix, column_order=perm)
        assert np.array_equal(csrv.to_dense(), paper_matrix)

    def test_reordering_changes_layout_not_codes_domain(self, paper_matrix):
        base = CSRVMatrix.from_dense(paper_matrix)
        perm = np.array([4, 3, 2, 1, 0])
        reordered = CSRVMatrix.from_dense(paper_matrix, column_order=perm)
        # Same multiset of codes, different order.
        assert sorted(base.s.tolist()) == sorted(reordered.s.tolist())
        assert base.s.tolist() != reordered.s.tolist()

    def test_reordering_preserves_multiplication(self, paper_matrix, rng):
        perm = rng.permutation(5)
        csrv = CSRVMatrix.from_dense(paper_matrix, column_order=perm)
        x = rng.standard_normal(5)
        assert np.allclose(csrv.right_multiply(x), paper_matrix @ x)

    def test_invalid_permutation_rejected(self, paper_matrix):
        with pytest.raises(MatrixFormatError):
            CSRVMatrix.from_dense(paper_matrix, column_order=[0, 1, 2, 3, 3])
        with pytest.raises(MatrixFormatError):
            CSRVMatrix.from_dense(paper_matrix, column_order=[0, 1])


class TestMultiplication:
    def test_right_matches_numpy(self, structured_matrix, rng):
        csrv = CSRVMatrix.from_dense(structured_matrix)
        x = rng.standard_normal(structured_matrix.shape[1])
        assert np.allclose(csrv.right_multiply(x), structured_matrix @ x)

    def test_left_matches_numpy(self, structured_matrix, rng):
        csrv = CSRVMatrix.from_dense(structured_matrix)
        y = rng.standard_normal(structured_matrix.shape[0])
        assert np.allclose(csrv.left_multiply(y), y @ structured_matrix)

    def test_right_zero_vector(self, structured_matrix):
        csrv = CSRVMatrix.from_dense(structured_matrix)
        out = csrv.right_multiply(np.zeros(structured_matrix.shape[1]))
        assert np.array_equal(out, np.zeros(structured_matrix.shape[0]))

    def test_wrong_length_rejected(self, paper_matrix):
        csrv = CSRVMatrix.from_dense(paper_matrix)
        with pytest.raises(MatrixFormatError):
            csrv.right_multiply(np.ones(4))
        with pytest.raises(MatrixFormatError):
            csrv.left_multiply(np.ones(5))

    def test_integer_vector_coerced(self, paper_matrix):
        csrv = CSRVMatrix.from_dense(paper_matrix)
        out = csrv.right_multiply(np.ones(5, dtype=int))
        assert out.dtype == np.float64


class TestSplitRows:
    def test_blocks_cover_matrix(self, structured_matrix):
        csrv = CSRVMatrix.from_dense(structured_matrix)
        blocks = csrv.split_rows(4)
        stacked = np.vstack([b.to_dense() for b in blocks])
        assert np.array_equal(stacked, structured_matrix)

    def test_block_row_counts_follow_ceiling_rule(self):
        matrix = np.ones((10, 2))
        blocks = CSRVMatrix.from_dense(matrix).split_rows(3)
        assert [b.shape[0] for b in blocks] == [4, 4, 2]

    def test_blocks_share_values_array(self, structured_matrix):
        csrv = CSRVMatrix.from_dense(structured_matrix)
        blocks = csrv.split_rows(2)
        assert np.shares_memory(blocks[0].values, blocks[1].values)

    def test_single_block_is_whole_matrix(self, structured_matrix):
        csrv = CSRVMatrix.from_dense(structured_matrix)
        (block,) = csrv.split_rows(1)
        assert block == csrv

    def test_invalid_block_count(self, paper_matrix):
        csrv = CSRVMatrix.from_dense(paper_matrix)
        with pytest.raises(MatrixFormatError):
            csrv.split_rows(0)
        with pytest.raises(MatrixFormatError):
            csrv.split_rows(7)


class TestAccounting:
    def test_size_bytes_formula(self, paper_matrix):
        csrv = CSRVMatrix.from_dense(paper_matrix)
        assert csrv.size_bytes() == 4 * csrv.s.size + 8 * csrv.values.size

    def test_iter_rows(self, paper_matrix):
        csrv = CSRVMatrix.from_dense(paper_matrix)
        rows = list(csrv.iter_rows())
        assert len(rows) == 6
        cols0, vals0 = rows[0]
        assert cols0.tolist() == [0, 1, 2, 4]
        assert np.allclose(vals0, [1.2, 3.4, 5.6, 2.3])

    def test_views_are_readonly(self, paper_matrix):
        csrv = CSRVMatrix.from_dense(paper_matrix)
        with pytest.raises(ValueError):
            csrv.s[0] = 99
        with pytest.raises(ValueError):
            csrv.values[0] = 99.0

    def test_repr(self, paper_matrix):
        assert "nnz=23" in repr(CSRVMatrix.from_dense(paper_matrix))


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=20),
    m=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=1000),
    density=st.floats(min_value=0.0, max_value=1.0),
)
def test_property_roundtrip_and_mvm(n, m, seed, density):
    rng = np.random.default_rng(seed)
    matrix = np.round(rng.uniform(-5, 5, size=(n, m)), 1)
    matrix[rng.random((n, m)) >= density] = 0.0
    csrv = CSRVMatrix.from_dense(matrix)
    assert np.array_equal(csrv.to_dense(), matrix)
    x = rng.standard_normal(m)
    y = rng.standard_normal(n)
    assert np.allclose(csrv.right_multiply(x), matrix @ x)
    assert np.allclose(csrv.left_multiply(y), y @ matrix)

"""Tests for BlockedMatrix (Section 4.1 multithreading)."""

import numpy as np
import pytest

from repro.core.blocked import BLOCK_FORMATS, BlockedMatrix
from repro.core.csrv import CSRVMatrix
from repro.core.gcm import GrammarCompressedMatrix
from repro.errors import MatrixFormatError


@pytest.fixture(params=list(BLOCK_FORMATS))
def block_format(request):
    return request.param


class TestConstruction:
    def test_lossless(self, structured_matrix, block_format):
        bm = BlockedMatrix.compress(structured_matrix, variant=block_format, n_blocks=4)
        assert np.array_equal(bm.to_dense(), structured_matrix)

    def test_block_count(self, structured_matrix):
        bm = BlockedMatrix.compress(structured_matrix, n_blocks=5)
        assert bm.n_blocks == 5

    def test_blocks_cover_consecutive_rows(self, structured_matrix):
        bm = BlockedMatrix.compress(structured_matrix, variant="csrv", n_blocks=3)
        rows = [b.shape[0] for b in bm.blocks]
        assert sum(rows) == structured_matrix.shape[0]

    def test_more_blocks_than_rows_clamped(self):
        matrix = np.eye(3)
        bm = BlockedMatrix.compress(matrix, n_blocks=3)
        assert bm.n_blocks == 3

    def test_unknown_format_rejected(self, paper_matrix):
        with pytest.raises(MatrixFormatError):
            BlockedMatrix.compress(paper_matrix, variant="zstd")

    def test_csrv_input_accepted(self, structured_matrix):
        csrv = CSRVMatrix.from_dense(structured_matrix)
        bm = BlockedMatrix.compress(csrv, variant="re_iv", n_blocks=2)
        assert np.array_equal(bm.to_dense(), structured_matrix)

    def test_shared_values_across_blocks(self, structured_matrix):
        bm = BlockedMatrix.compress(structured_matrix, variant="re_32", n_blocks=3)
        first = bm.blocks[0].values
        for block in bm.blocks[1:]:
            assert np.shares_memory(first, block.values)

    def test_empty_block_list_rejected(self):
        with pytest.raises(MatrixFormatError):
            BlockedMatrix([], (0, 0))

    def test_row_coverage_validated(self, structured_matrix):
        blocks = CSRVMatrix.from_dense(structured_matrix).split_rows(2)
        with pytest.raises(MatrixFormatError):
            BlockedMatrix(blocks, (structured_matrix.shape[0] + 1, structured_matrix.shape[1]))


class TestMultiplication:
    @pytest.mark.parametrize("threads", [1, 2, 4, 8])
    def test_right_any_thread_count(self, structured_matrix, threads, rng):
        bm = BlockedMatrix.compress(structured_matrix, variant="re_32", n_blocks=4)
        x = rng.standard_normal(structured_matrix.shape[1])
        assert np.allclose(
            bm.right_multiply(x, threads=threads), structured_matrix @ x
        )

    @pytest.mark.parametrize("threads", [1, 2, 4, 8])
    def test_left_any_thread_count(self, structured_matrix, threads, rng):
        bm = BlockedMatrix.compress(structured_matrix, variant="re_32", n_blocks=4)
        y = rng.standard_normal(structured_matrix.shape[0])
        assert np.allclose(
            bm.left_multiply(y, threads=threads), y @ structured_matrix
        )

    def test_all_formats_agree(self, structured_matrix, rng):
        x = rng.standard_normal(structured_matrix.shape[1])
        results = [
            BlockedMatrix.compress(
                structured_matrix, variant=v, n_blocks=3
            ).right_multiply(x, threads=2)
            for v in BLOCK_FORMATS
        ]
        for r in results[1:]:
            assert np.allclose(r, results[0])

    def test_threaded_equals_sequential(self, structured_matrix, rng):
        bm = BlockedMatrix.compress(structured_matrix, variant="re_ans", n_blocks=4)
        y = rng.standard_normal(structured_matrix.shape[0])
        assert np.allclose(
            bm.left_multiply(y, threads=4), bm.left_multiply(y, threads=1)
        )

    def test_invalid_threads(self, paper_matrix):
        bm = BlockedMatrix.compress(paper_matrix, n_blocks=2)
        with pytest.raises(MatrixFormatError):
            bm.right_multiply(np.ones(5), threads=0)

    def test_wrong_vector_length(self, paper_matrix):
        bm = BlockedMatrix.compress(paper_matrix, n_blocks=2)
        with pytest.raises(MatrixFormatError):
            bm.right_multiply(np.ones(2))
        with pytest.raises(MatrixFormatError):
            bm.left_multiply(np.ones(2))


class TestPerBlockReordering:
    def test_column_orders_applied_per_block(self, structured_matrix, rng):
        m = structured_matrix.shape[1]
        orders = [rng.permutation(m) for _ in range(3)]
        bm = BlockedMatrix.compress(
            structured_matrix, variant="re_32", n_blocks=3, column_orders=orders
        )
        assert np.array_equal(bm.to_dense(), structured_matrix)
        x = rng.standard_normal(m)
        assert np.allclose(bm.right_multiply(x), structured_matrix @ x)

    def test_order_count_mismatch_rejected(self, structured_matrix):
        with pytest.raises(MatrixFormatError):
            BlockedMatrix.compress(
                structured_matrix,
                n_blocks=3,
                column_orders=[np.arange(structured_matrix.shape[1])] * 2,
            )

    def test_reordered_blocks_share_global_values(self, structured_matrix, rng):
        # Section 4.1: the value array V is global even when each block
        # is reordered with its own permutation.  Per-block V arrays
        # would shrink the code space and fake extra compression.
        m = structured_matrix.shape[1]
        orders = [rng.permutation(m) for _ in range(3)]
        bm = BlockedMatrix.compress(
            structured_matrix, variant="re_iv", n_blocks=3, column_orders=orders
        )
        global_v = CSRVMatrix.from_dense(structured_matrix).values
        for block in bm.blocks:
            assert np.array_equal(block.values, global_v)

    def test_identity_orders_match_plain_blocked_size(self, structured_matrix):
        # With identity permutations the reordered path must produce
        # exactly the plain blocked compression (same S per block).
        m = structured_matrix.shape[1]
        orders = [np.arange(m)] * 4
        reordered = BlockedMatrix.compress(
            structured_matrix, variant="re_iv", n_blocks=4, column_orders=orders
        )
        plain = BlockedMatrix.compress(
            structured_matrix, variant="re_iv", n_blocks=4
        )
        assert reordered.size_bytes() == plain.size_bytes()

    def test_orders_require_dense_source(self, structured_matrix):
        csrv = CSRVMatrix.from_dense(structured_matrix)
        with pytest.raises(MatrixFormatError):
            BlockedMatrix.compress(
                csrv,
                n_blocks=2,
                column_orders=[np.arange(structured_matrix.shape[1])] * 2,
            )


class TestAccounting:
    def test_shared_values_counted_once(self, structured_matrix):
        bm = BlockedMatrix.compress(structured_matrix, variant="re_32", n_blocks=4)
        per_block_cr = sum(
            b.size_breakdown()["C"] + b.size_breakdown()["R"] for b in bm.blocks
        )
        v_bytes = 8 * bm.blocks[0].values.size
        assert bm.size_bytes() == per_block_cr + v_bytes

    def test_csrv_blocks_accounting(self, structured_matrix):
        bm = BlockedMatrix.compress(structured_matrix, variant="csrv", n_blocks=2)
        s_bytes = sum(4 * b.s.size for b in bm.blocks)
        v_bytes = 8 * bm.blocks[0].values.size
        assert bm.size_bytes() == s_bytes + v_bytes

    def test_repr(self, structured_matrix):
        bm = BlockedMatrix.compress(structured_matrix, variant="re_iv", n_blocks=2)
        assert "n_blocks=2" in repr(bm)
        assert "GrammarCompressedMatrix" in repr(bm)

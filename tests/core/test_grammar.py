"""Tests for the SLP grammar model."""

import numpy as np
import pytest

from repro.core.grammar import Grammar
from repro.errors import GrammarError


def _tiny_grammar():
    # Terminals 1..4, nt_base = 5.
    # N0 -> 1 2 ; N1 -> N0 3 ; C = N1 $ N0 $ 4 $
    return Grammar(
        nt_base=5,
        rules=np.array([[1, 2], [5, 3]]),
        final=np.array([6, 0, 5, 0, 4, 0]),
    )


class TestBasics:
    def test_sizes(self):
        g = _tiny_grammar()
        assert g.n_rules == 2
        assert g.n_rows == 3
        assert g.size == 6 + 4  # |C| + 2|R|

    def test_max_symbol(self):
        assert _tiny_grammar().max_symbol == 6

    def test_is_nonterminal(self):
        g = _tiny_grammar()
        assert g.is_nonterminal(5)
        assert not g.is_nonterminal(4)
        mask = g.is_nonterminal(np.array([1, 5, 6]))
        assert mask.tolist() == [False, True, True]

    def test_empty_grammar(self):
        g = Grammar(nt_base=3, rules=np.zeros((0, 2)), final=np.array([1, 0, 2, 0]))
        g.validate()
        assert g.n_rules == 0
        assert g.depth == 0
        assert np.array_equal(g.expand(), [1, 0, 2, 0])


class TestExpansion:
    def test_expand_symbol_terminal(self):
        assert _tiny_grammar().expand_symbol(3).tolist() == [3]

    def test_expand_symbol_nested(self):
        g = _tiny_grammar()
        assert g.expand_symbol(5).tolist() == [1, 2]
        assert g.expand_symbol(6).tolist() == [1, 2, 3]

    def test_expand_full(self):
        g = _tiny_grammar()
        assert g.expand().tolist() == [1, 2, 3, 0, 1, 2, 0, 4, 0]

    def test_expansion_lengths(self):
        assert _tiny_grammar().expansion_lengths().tolist() == [2, 3]

    def test_deep_chain_expansion(self):
        # N_i -> N_{i-1} t : expansion length grows linearly, depth = q.
        q = 200
        rules = [[1, 2]]
        for i in range(1, q):
            rules.append([2 + i, 1])  # nt_base=3, so rule i-1 has id 3+i-1
        g = Grammar(nt_base=3, rules=np.array(rules), final=np.array([3 + q - 1, 0]))
        g.validate()
        assert g.expansion_lengths()[-1] == q + 1
        assert g.depth == q
        assert g.expand().size == q + 2


class TestValidation:
    def test_valid_grammar_passes(self):
        _tiny_grammar().validate()

    def test_forward_reference_rejected(self):
        g = Grammar(nt_base=5, rules=np.array([[6, 1], [1, 2]]), final=np.array([5, 0, 6, 0]))
        with pytest.raises(GrammarError):
            g.validate()

    def test_self_reference_rejected(self):
        g = Grammar(nt_base=5, rules=np.array([[5, 1]]), final=np.array([5, 0]))
        with pytest.raises(GrammarError):
            g.validate()

    def test_separator_in_rule_rejected(self):
        g = Grammar(nt_base=5, rules=np.array([[0, 1]]), final=np.array([5, 0]))
        with pytest.raises(GrammarError):
            g.validate()

    def test_undefined_rule_in_final_rejected(self):
        g = Grammar(nt_base=5, rules=np.array([[1, 2]]), final=np.array([7, 0]))
        with pytest.raises(GrammarError):
            g.validate()

    def test_useless_rule_rejected(self):
        # N1 is never used anywhere.
        g = Grammar(
            nt_base=5,
            rules=np.array([[1, 2], [3, 4]]),
            final=np.array([5, 0]),
        )
        with pytest.raises(GrammarError, match="unreachable"):
            g.validate()

    def test_rule_reachable_through_other_rule(self):
        # N0 only referenced by N1, N1 in C — both reachable.
        g = Grammar(
            nt_base=5,
            rules=np.array([[1, 2], [5, 3]]),
            final=np.array([6, 0]),
        )
        g.validate()

    def test_bad_nt_base(self):
        g = Grammar(nt_base=0, rules=np.zeros((0, 2)), final=np.array([0]))
        with pytest.raises(GrammarError):
            g.validate()


class TestLevels:
    def test_flat_rules_are_level_one(self):
        g = Grammar(
            nt_base=5, rules=np.array([[1, 2], [3, 4]]), final=np.array([5, 6, 0])
        )
        assert g.rule_levels().tolist() == [1, 1]

    def test_nested_levels(self):
        g = _tiny_grammar()
        assert g.rule_levels().tolist() == [1, 2]
        assert g.depth == 2

    def test_dag_level_is_max_of_children(self):
        # N2 -> N0 N1 where N0 level 1, N1 level 2.
        g = Grammar(
            nt_base=5,
            rules=np.array([[1, 2], [5, 3], [5, 6]]),
            final=np.array([7, 0]),
        )
        assert g.rule_levels().tolist() == [1, 2, 3]

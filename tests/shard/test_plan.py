"""Tests for the row-range shard planner and its density profiling."""

import numpy as np
import pytest

from repro.errors import MatrixFormatError
from repro.shard.plan import (
    ShardPlan,
    plan_shards,
    profile_slice,
    select_format,
)


def mixed_matrix(rng, cols: int = 12) -> np.ndarray:
    """Three stripes: sparse, dense-repetitive, dense-irregular."""
    sparse = (rng.random((40, cols)) < 0.05) * 3.0
    repetitive = np.kron(np.ones((10, cols // 3)), np.full((4, 3), 2.5))
    irregular = rng.random((40, cols)).round(6) + 0.1
    return np.vstack([sparse, repetitive, irregular])


class TestBoundaries:
    def test_explicit_shard_count(self, rng):
        plan = plan_shards(mixed_matrix(rng), n_shards=5)
        assert plan.n_shards == 5
        offsets = plan.row_offsets
        assert offsets[0] == 0 and offsets[-1] == 120
        assert all(offsets[i] < offsets[i + 1] for i in range(5))

    def test_target_rows(self, rng):
        plan = plan_shards(mixed_matrix(rng), target_rows=50)
        assert plan.n_shards == 3  # ceil(120 / 50)
        assert max(s.n_rows for s in plan.shards) <= 50

    def test_target_bytes(self, rng):
        dense = mixed_matrix(rng)  # rows are 12 * 8 = 96 dense bytes
        plan = plan_shards(dense, target_bytes=96 * 30)
        assert plan.n_shards == 4  # 30 rows per shard
        assert all(s.n_rows <= 30 for s in plan.shards)

    def test_default_partition(self, rng):
        assert plan_shards(mixed_matrix(rng)).n_shards == 4
        assert plan_shards(np.ones((2, 3))).n_shards == 2

    def test_rows_covered_exactly_once(self, rng):
        plan = plan_shards(mixed_matrix(rng), n_shards=7)
        covered = [
            r for s in plan.shards for r in range(s.row_start, s.row_stop)
        ]
        assert covered == list(range(120))

    def test_sizing_knobs_are_exclusive(self, rng):
        with pytest.raises(MatrixFormatError, match="at most one"):
            plan_shards(mixed_matrix(rng), n_shards=2, target_rows=10)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_shards": 0},
            {"n_shards": 1000},
            {"target_rows": 0},
            {"target_bytes": 0},
        ],
    )
    def test_bad_sizes_rejected(self, rng, kwargs):
        with pytest.raises(MatrixFormatError):
            plan_shards(mixed_matrix(rng), **kwargs)

    def test_non_matrix_rejected(self):
        with pytest.raises(MatrixFormatError):
            plan_shards(np.ones(7))
        with pytest.raises(MatrixFormatError):
            plan_shards(np.ones((0, 4)))


class TestFormatSelection:
    def test_profile_slice(self):
        block = np.array([[0.0, 1.0], [2.0, 1.0]])
        density, distinct = profile_slice(block)
        assert density == 0.75
        assert distinct == 2

    def test_sparse_goes_to_csr(self, rng):
        block = (rng.random((30, 10)) < 0.05) * 1.0
        assert select_format(block) == "csr"

    def test_repetitive_goes_to_grammar(self):
        block = np.kron(np.ones((8, 4)), np.full((3, 3), 2.5))
        assert select_format(block) == "re_ans"

    def test_irregular_dense_goes_to_csrv(self, rng):
        block = rng.random((30, 10)).round(8) + 0.1
        assert select_format(block) == "csrv"

    def test_mixed_matrix_gets_mixed_formats(self, rng):
        plan = plan_shards(mixed_matrix(rng), n_shards=3)
        assert plan.formats == ("csr", "re_ans", "csrv")

    def test_explicit_format_everywhere(self, rng):
        plan = plan_shards(mixed_matrix(rng), n_shards=3, format="csrv")
        assert plan.formats == ("csrv", "csrv", "csrv")

    def test_unknown_format_rejected(self, rng):
        with pytest.raises(MatrixFormatError, match="unknown shard format"):
            plan_shards(mixed_matrix(rng), format="bzip2")


class TestPlanObject:
    def test_describe_rows(self, rng):
        plan = plan_shards(mixed_matrix(rng), n_shards=3)
        rows = plan.describe()
        assert [d["shard"] for d in rows] == [0, 1, 2]
        assert all(
            {"rows", "format", "density", "distinct"} <= set(d) for d in rows
        )

    def test_plan_is_immutable(self, rng):
        plan = plan_shards(mixed_matrix(rng), n_shards=2)
        assert isinstance(plan, ShardPlan)
        with pytest.raises(AttributeError):
            plan.shape = (1, 1)

"""Tests for lazy shard-by-shard serving and shard-level eviction."""

import numpy as np
import pytest

from repro.io.serialize import read_shard_manifest, save_matrix
from repro.serve.registry import MatrixRegistry
from repro.shard import LazyShardedMatrix, build_sharded
from tests.shard.test_plan import mixed_matrix


@pytest.fixture
def dense(rng):
    return mixed_matrix(rng)


@pytest.fixture
def container(dense, tmp_path):
    """A 3-shard mixed-format container file on disk."""
    sm = build_sharded(dense, n_shards=3)
    path = tmp_path / "m.gcmx"
    save_matrix(sm, path)
    return path, sm


class TestManifest:
    def test_manifest_matches_container(self, container, dense):
        path, sm = container
        shape, entries = read_shard_manifest(path)
        assert shape == dense.shape
        assert len(entries) == 3
        assert [e.row_start for e in entries] == list(sm.row_offsets[:-1])
        # sections tile the rest of the file exactly, up to the
        # trailing whole-file checksum footer
        from repro.resilience.integrity import FOOTER_BYTES

        end = entries[-1].offset + entries[-1].length
        assert end == path.stat().st_size - FOOTER_BYTES

    def test_manifest_rejects_non_sharded_file(self, dense, tmp_path):
        import repro

        path = tmp_path / "plain.gcmx"
        save_matrix(repro.compress(dense, format="csrv"), path)
        from repro.errors import SerializationError

        with pytest.raises(SerializationError, match="not a sharded"):
            read_shard_manifest(path)


class TestLazyLoading:
    def test_nothing_loaded_at_construction(self, container):
        path, _ = container
        lazy = LazyShardedMatrix(path)
        assert lazy.resident_shards == 0
        assert lazy.shard_loads == 0
        assert lazy.resident_footprint_bytes() == 0

    def test_multiply_matches_dense_and_loads_all(self, container, dense, rng):
        path, _ = container
        lazy = LazyShardedMatrix(path)
        x = rng.standard_normal(dense.shape[1])
        assert np.allclose(lazy @ x, dense @ x)
        assert lazy.shard_loads == 3
        assert lazy.resident_shards == 3  # no budget: everything stays
        y = rng.standard_normal(dense.shape[0])
        assert np.allclose(y @ lazy, y @ dense)
        assert lazy.shard_loads == 3  # warm: no reloads

    def test_panel_matches_dense(self, container, dense, rng):
        path, _ = container
        lazy = LazyShardedMatrix(path)
        X = rng.standard_normal((dense.shape[1], 5))
        assert np.allclose(lazy.right_multiply_matrix(X, panel_width=2), dense @ X)

    def test_to_dense(self, container, dense):
        path, _ = container
        assert np.allclose(LazyShardedMatrix(path).to_dense(), dense)

    def test_size_bytes_without_loading(self, container):
        path, sm = container
        lazy = LazyShardedMatrix(path)
        _, entries = read_shard_manifest(path)
        assert lazy.size_bytes() == sum(e.length for e in entries)
        assert lazy.resident_shards == 0


class TestShardEviction:
    def test_budget_evicts_cold_shards_after_multiply(
        self, container, dense, rng
    ):
        path, sm = container
        # budget below the total resident estimate but above the
        # largest single shard's — a strict subset survives each op.
        per_shard = [s.size_bytes() + s.resident_overhead_bytes()
                     for s in sm.shards]
        budget = max(per_shard) + min(per_shard)
        lazy = LazyShardedMatrix(path, shard_byte_budget=budget)
        x = rng.standard_normal(dense.shape[1])
        assert np.allclose(lazy @ x, dense @ x)
        assert lazy.shard_evictions >= 1
        assert 0 < lazy.resident_shards < 3
        assert lazy.resident_shard_bytes() <= budget
        # still servable: cold shards stream back in
        assert np.allclose(lazy @ x, dense @ x)
        assert lazy.shard_loads > 3

    def test_sequential_multiply_streams_within_budget(
        self, container, dense, rng
    ):
        """One request never holds more than budget + one shard."""
        path, sm = container
        per_shard = [s.size_bytes() + s.resident_overhead_bytes()
                     for s in sm.shards]
        budget = min(per_shard)  # almost nothing may stay loaded
        lazy = LazyShardedMatrix(path, shard_byte_budget=budget)
        peak = 0
        original = lazy._after_shard

        def tracking_after_shard(i):
            nonlocal peak
            peak = max(peak, lazy.resident_shard_bytes())
            original(i)

        lazy._after_shard = tracking_after_shard
        x = rng.standard_normal(dense.shape[1])
        assert np.allclose(lazy @ x, dense @ x)
        # streaming: between shard visits the loaded set stayed within
        # the budget plus the shard just visited
        assert peak <= budget + max(per_shard)
        assert peak < sum(per_shard), "whole container was materialised"

    def test_lru_keeps_recently_used(self, container, dense, rng):
        path, sm = container
        lazy = LazyShardedMatrix(path, shard_byte_budget=1)
        x = rng.standard_normal(dense.shape[1])
        assert np.allclose(lazy @ x, dense @ x)
        # budget of 1 byte: everything evicted, matrix still answers
        assert lazy.resident_shards == 0
        assert np.allclose(lazy @ x, dense @ x)

    def test_evict_all_shards(self, container, dense, rng):
        path, _ = container
        lazy = LazyShardedMatrix(path)
        lazy @ rng.standard_normal(dense.shape[1])
        lazy.evict_all_shards()
        assert lazy.resident_shards == 0


class TestRegistryServing:
    def test_lazy_load_through_registry(self, container, dense, rng):
        path, _ = container
        registry = MatrixRegistry(root=path.parent)
        matrix = registry.get("m")
        assert isinstance(matrix, LazyShardedMatrix)
        x = rng.standard_normal(dense.shape[1])
        assert np.allclose(matrix @ x, dense @ x)

    def test_registry_describe_reports_shards(self, container, dense, rng):
        path, _ = container
        registry = MatrixRegistry(root=path.parent)
        info = registry.describe("m")
        assert info["format"] == "sharded"
        assert info["n_shards"] == 3
        assert "resident_shards" not in info  # not resident yet
        matrix = registry.get("m")
        matrix @ rng.standard_normal(dense.shape[1])
        info = registry.describe("m")
        assert info["resident_shards"] == 3

    def test_shard_level_eviction_under_registry_budget(
        self, container, dense, rng
    ):
        path, sm = container
        per_shard = [s.size_bytes() + s.resident_overhead_bytes()
                     for s in sm.shards]
        budget = max(per_shard) + min(per_shard)
        registry = MatrixRegistry(root=path.parent, byte_budget=budget)
        matrix = registry.get("m")
        assert matrix.shard_byte_budget == budget
        x = rng.standard_normal(dense.shape[1])
        assert np.allclose(matrix @ x, dense @ x)
        # shards were evicted, the matrix itself stays registered+resident
        stats = registry.stats()
        assert stats["resident"] == 1
        assert stats["shard_loads"] >= 3
        assert stats["shard_evictions"] >= 1
        assert 0 < stats["resident_shards"] < 3
        assert registry.resident_bytes <= budget

    def test_registry_whole_eviction_releases_shards(
        self, container, dense, rng
    ):
        path, _ = container
        registry = MatrixRegistry(root=path.parent)
        matrix = registry.get("m")
        matrix @ rng.standard_normal(dense.shape[1])
        assert matrix.resident_shards == 3
        assert registry.evict("m") is True
        assert matrix.resident_shards == 0

    def test_enforce_budget_bounds_multiple_grown_entries(
        self, dense, tmp_path, rng
    ):
        """Residency grown after load is brought back under the budget."""
        for name in ("a", "b"):
            save_matrix(build_sharded(dense, n_shards=3), tmp_path / f"{name}.gcmx")
        one_total = sum(
            s.size_bytes() + s.resident_overhead_bytes()
            for s in build_sharded(dense, n_shards=3).shards
        )
        # Fits one fully-loaded container, not two.
        budget = int(1.5 * one_total)
        registry = MatrixRegistry(root=tmp_path, byte_budget=budget)
        x = rng.standard_normal(dense.shape[1])
        for name in ("a", "b"):
            # threads=2 loads all shards at once (no in-request streaming)
            registry.get(name).right_multiply(x, threads=2)
        assert registry.resident_bytes > budget  # grown past the check
        evicted = registry.enforce_budget(keep="b")
        assert evicted >= 1
        assert registry.resident_bytes <= budget
        assert registry.describe("b")["resident"] is True

    def test_shard_counters_survive_whole_eviction(
        self, container, dense, rng
    ):
        path, _ = container
        registry = MatrixRegistry(root=path.parent)
        matrix = registry.get("m")
        matrix @ rng.standard_normal(dense.shape[1])
        before = registry.stats()
        assert before["shard_loads"] == 3
        registry.evict("m")
        after = registry.stats()
        assert after["shard_loads"] == 3  # absorbed, not lost
        assert after["resident_shards"] == 0

    def test_eager_shards_opt_out(self, container, dense):
        from repro.shard import ShardedMatrix

        path, _ = container
        registry = MatrixRegistry(root=path.parent, lazy_shards=False)
        assert isinstance(registry.get("m"), ShardedMatrix)
        assert registry.stats()["lazy_shards"] is False

    def test_plan_retention_flows_to_lazy_shards(self, container, dense, rng):
        path, _ = container
        registry = MatrixRegistry(root=path.parent, retain_plans=True)
        matrix = registry.get("m")
        matrix @ rng.standard_normal(dense.shape[1])
        # the re_ans shard retains its plan → overhead is charged
        assert matrix.resident_footprint_bytes() > matrix.size_bytes()


class TestServedOverHttp:
    def test_multiply_round_trip(self, container, dense, rng):
        import json
        import urllib.request

        from repro.serve.server import MatrixServer

        path, _ = container
        registry = MatrixRegistry(root=path.parent, byte_budget=64 * 1024)
        with MatrixServer(registry, port=0).start() as server:
            x = rng.standard_normal(dense.shape[1])
            req = urllib.request.Request(
                f"{server.url}/multiply",
                data=json.dumps(
                    {"matrix": "m", "vectors": x.tolist()}
                ).encode(),
                method="POST",
            )
            body = json.loads(urllib.request.urlopen(req, timeout=30).read())
            assert body["format"] == "sharded"
            assert np.allclose(np.asarray(body["result"][0]), dense @ x)
            stats = json.loads(
                urllib.request.urlopen(f"{server.url}/stats", timeout=10).read()
            )
            assert stats["registry"]["shard_loads"] >= 3

"""Tests for ShardedMatrix: scatter-gather kernels, accounting, io."""

import numpy as np
import pytest

import repro
from repro import formats
from repro.errors import MatrixFormatError
from repro.io.serialize import (
    loads_matrix,
    peek_matrix_info,
    save_matrix,
    saves_matrix,
)
from repro.serve.executor import BlockExecutor
from repro.shard import ShardedMatrix, build_sharded, plan_shards
from tests.shard.test_plan import mixed_matrix


@pytest.fixture
def dense(rng):
    return mixed_matrix(rng)


@pytest.fixture
def sharded(dense):
    """≥ 3 shards with mixed per-shard formats (csr / re_ans / csrv)."""
    sm = build_sharded(dense, n_shards=3)
    assert len(set(sm.shard_formats)) == 3
    return sm


class TestConstruction:
    def test_build_from_plan(self, dense):
        plan = plan_shards(dense, n_shards=4)
        sm = build_sharded(dense, plan=plan)
        assert sm.n_shards == 4
        assert sm.shape == dense.shape
        assert np.array_equal(sm.row_offsets, plan.row_offsets)

    def test_build_via_registry(self, dense):
        sm = repro.compress(dense, format="sharded", n_shards=3)
        assert isinstance(sm, ShardedMatrix)
        assert formats.spec_for(sm).name == "sharded"

    def test_parallel_build_matches_sequential(self, dense):
        seq = build_sharded(dense, n_shards=3)
        with BlockExecutor(2) as executor:
            par = build_sharded(dense, n_shards=3, executor=executor)
        thr = build_sharded(dense, n_shards=3, workers=2)
        for built in (par, thr):
            assert built.shard_formats == seq.shard_formats
            assert built.size_bytes() == seq.size_bytes()
            assert np.allclose(built.to_dense(), dense)

    def test_plan_shape_mismatch(self, dense):
        plan = plan_shards(dense[:-1], n_shards=2)
        with pytest.raises(MatrixFormatError, match="plan is for shape"):
            build_sharded(dense, plan=plan)

    def test_empty_shards_rejected(self):
        with pytest.raises(MatrixFormatError):
            ShardedMatrix([], (0, 0))

    def test_inconsistent_shards_rejected(self, dense):
        shard = repro.compress(dense[:10], format="csrv")
        with pytest.raises(MatrixFormatError, match="cover"):
            ShardedMatrix([shard], dense.shape)


class TestMultiplication:
    def test_right_left_match_dense(self, sharded, dense, rng):
        x = rng.standard_normal(dense.shape[1])
        y = rng.standard_normal(dense.shape[0])
        assert np.allclose(sharded @ x, dense @ x)
        assert np.allclose(y @ sharded, y @ dense)
        assert np.allclose(sharded.transpose_multiply(y), dense.T @ y)

    def test_panel_kernels_match_dense(self, sharded, dense, rng):
        X = rng.standard_normal((dense.shape[1], 6))
        Y = rng.standard_normal((dense.shape[0], 5))
        assert np.allclose(sharded.right_multiply_matrix(X), dense @ X)
        assert np.allclose(
            sharded.left_multiply_matrix(Y), dense.T @ Y
        )
        # chunked panels reuse one kernel build
        assert np.allclose(
            sharded.right_multiply_matrix(X, panel_width=2), dense @ X
        )

    def test_threads_and_executor_paths(self, sharded, dense, rng):
        x = rng.standard_normal(dense.shape[1])
        expected = dense @ x
        assert np.allclose(sharded.right_multiply(x, threads=3), expected)
        with BlockExecutor(2) as executor:
            assert np.allclose(
                sharded.right_multiply(x, executor=executor), expected
            )
            y = rng.standard_normal(dense.shape[0])
            assert np.allclose(
                sharded.left_multiply(y, executor=executor), y @ dense
            )

    def test_batch_layer_dispatch(self, sharded, dense, rng):
        from repro.serve.batch import batch_left_multiply, batch_right_multiply

        vectors = rng.standard_normal((4, dense.shape[1]))
        out = batch_right_multiply(sharded, vectors, panel_width=2)
        assert np.allclose(out, dense @ vectors.T)
        with BlockExecutor(2) as executor:
            out = batch_right_multiply(sharded, vectors, executor=executor)
            assert np.allclose(out, dense @ vectors.T)
        ys = rng.standard_normal((3, dense.shape[0]))
        assert np.allclose(
            batch_left_multiply(sharded, ys), dense.T @ ys.T
        )


class TestAccounting:
    def test_size_breakdown_sums_and_groups_by_format(self, sharded):
        breakdown = sharded.size_breakdown()
        assert set(breakdown) == set(sharded.shard_formats)
        assert sum(breakdown.values()) == sharded.size_bytes()

    def test_plan_retention_forwards_to_shards(self, sharded):
        # the re_ans shard supports retention, so the container reports it
        assert sharded.enable_plan_retention(True) is True
        overhead = sharded.resident_overhead_bytes()
        assert overhead >= 0
        assert sharded.resident_footprint_bytes() == (
            sharded.size_bytes() + overhead
        )
        sharded.release_retained_plans()
        # "True" means a shard *supports* retention, whichever way the
        # flag goes (matching the grammar formats' contract).
        assert sharded.enable_plan_retention(False) is True


class TestSerialization:
    def test_roundtrip(self, sharded, dense):
        back = loads_matrix(saves_matrix(sharded))
        assert isinstance(back, ShardedMatrix)
        assert back.shard_formats == sharded.shard_formats
        assert np.allclose(back.to_dense(), dense)

    def test_header_peek(self, sharded, dense):
        info = peek_matrix_info(saves_matrix(sharded))
        assert info == {
            "kind": "sharded",
            "shape": dense.shape,
            "n_shards": 3,
            "integrity": "verified",
        }

    def test_read_matrix_info_from_file(self, sharded, tmp_path):
        from repro.io.serialize import read_matrix_info

        path = tmp_path / "s.gcmx"
        save_matrix(sharded, path)
        info = read_matrix_info(path)
        assert info["kind"] == "sharded"
        assert info["n_shards"] == 3
        assert info["file_bytes"] == path.stat().st_size

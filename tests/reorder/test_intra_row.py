"""Tests for intra-row pair reordering (the paper's future-work item)."""

import numpy as np
import pytest

from repro.core.csrv import CSRVMatrix
from repro.core.gcm import GrammarCompressedMatrix
from repro.errors import MatrixFormatError
from repro.reorder.intra_row import INTRA_ROW_KEYS, reorder_within_rows


class TestSemanticsPreserved:
    @pytest.mark.parametrize("key", INTRA_ROW_KEYS)
    def test_same_dense_matrix(self, structured_matrix, key):
        csrv = CSRVMatrix.from_dense(structured_matrix)
        reordered = reorder_within_rows(csrv, key=key)
        assert np.array_equal(reordered.to_dense(), structured_matrix)

    @pytest.mark.parametrize("key", INTRA_ROW_KEYS)
    def test_same_multiplication(self, structured_matrix, rng, key):
        csrv = CSRVMatrix.from_dense(structured_matrix)
        reordered = reorder_within_rows(csrv, key=key)
        x = rng.standard_normal(structured_matrix.shape[1])
        y = rng.standard_normal(structured_matrix.shape[0])
        assert np.allclose(reordered.right_multiply(x), csrv.right_multiply(x))
        assert np.allclose(reordered.left_multiply(y), csrv.left_multiply(y))

    @pytest.mark.parametrize("key", INTRA_ROW_KEYS)
    def test_rows_keep_their_pairs(self, structured_matrix, key):
        csrv = CSRVMatrix.from_dense(structured_matrix)
        reordered = reorder_within_rows(csrv, key=key)
        pairs = zip(csrv.iter_rows(), reordered.iter_rows(), strict=True)
        for (c0, v0), (c1, v1) in pairs:
            assert sorted(zip(c0.tolist(), v0.tolist(), strict=True)) == sorted(
                zip(c1.tolist(), v1.tolist(), strict=True)
            )

    def test_unknown_key_rejected(self, paper_matrix):
        with pytest.raises(MatrixFormatError):
            reorder_within_rows(CSRVMatrix.from_dense(paper_matrix), key="magic")


class TestCanonicalisation:
    def test_code_key_sorts_each_row(self, paper_matrix):
        csrv = CSRVMatrix.from_dense(paper_matrix, column_order=[4, 3, 2, 1, 0])
        canonical = reorder_within_rows(csrv, key="code")
        # Every row's codes must be ascending.
        s = canonical.s
        boundary = s == 0
        last = -1
        for code in s.tolist():
            if code == 0:
                last = -1
            else:
                assert code > last
                last = code

    def test_code_key_unifies_permuted_layouts(self, paper_matrix, rng):
        # Two different column orders lead to identical canonical S.
        a = CSRVMatrix.from_dense(paper_matrix, column_order=rng.permutation(5))
        b = CSRVMatrix.from_dense(paper_matrix, column_order=rng.permutation(5))
        assert reorder_within_rows(a, "code") == reorder_within_rows(b, "code")

    def test_frequency_key_fronts_common_codes(self):
        # Column 0's value appears in every row; with frequency order it
        # must come first in each row even though its code is largest.
        matrix = np.array(
            [[9.0, 1.0, 0.0], [9.0, 0.0, 2.0], [9.0, 3.0, 0.0], [9.0, 0.0, 4.0]]
        )
        csrv = CSRVMatrix.from_dense(matrix, column_order=[1, 2, 0])
        reordered = reorder_within_rows(csrv, key="frequency")
        m = 3
        code_of_9_col0 = None
        for code in reordered.s.tolist():
            if code != 0:
                pair = code - 1
                if reordered.values[pair // m] == 9.0 and pair % m == 0:
                    code_of_9_col0 = code
                break
        assert code_of_9_col0 is not None


class TestCompressionEffect:
    def test_canonicalisation_never_hurts_shared_row_sets(self, rng):
        # Rows with identical pair *sets* but shuffled layouts: the
        # canonical form must compress dramatically better.
        base_row = np.array([1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 0.0, 0.0])
        rows = []
        for _ in range(120):
            perm = rng.permutation(8)
            rows.append(base_row[perm])
        # Build with random per-row layout via from_arrays in row order.
        matrix = np.array(rows)
        csrv = CSRVMatrix.from_dense(matrix)
        canonical = reorder_within_rows(csrv, key="code")
        raw = GrammarCompressedMatrix.compress(csrv, variant="re_32")
        canon = GrammarCompressedMatrix.compress(canonical, variant="re_32")
        assert canon.size_bytes() <= raw.size_bytes()

    @pytest.mark.parametrize("key", INTRA_ROW_KEYS)
    def test_compressed_and_still_correct(self, structured_matrix, rng, key):
        csrv = CSRVMatrix.from_dense(structured_matrix)
        gm = GrammarCompressedMatrix.compress(
            reorder_within_rows(csrv, key=key), variant="re_ans"
        )
        x = rng.standard_normal(structured_matrix.shape[1])
        assert np.allclose(gm.right_multiply(x), structured_matrix @ x)
        assert np.array_equal(gm.to_dense(), structured_matrix)

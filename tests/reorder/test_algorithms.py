"""Tests for the four column-reordering algorithms (Section 5.2)."""

import numpy as np
import pytest

from repro.reorder.matching import matching_order
from repro.reorder.path_cover import path_cover_order, path_cover_plus_order
from repro.reorder.similarity import column_similarity_matrix
from repro.reorder.tsp import tour_gain, tsp_order

ALL_ALGORITHMS = [
    pytest.param(path_cover_order, id="pathcover"),
    pytest.param(path_cover_plus_order, id="pathcover+"),
    pytest.param(matching_order, id="mwm"),
    pytest.param(tsp_order, id="lkh"),
]


def _block_csm(m: int, groups: list[list[int]], within: float = 0.9) -> np.ndarray:
    """A CSM with strongly similar column groups, zero across groups."""
    csm = np.zeros((m, m))
    for group in groups:
        for a in group:
            for b in group:
                if a != b:
                    csm[a, b] = within
    return csm


class TestAllAlgorithms:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_output_is_permutation(self, algorithm, structured_matrix):
        csm = column_similarity_matrix(structured_matrix)
        order = algorithm(csm)
        assert sorted(order.tolist()) == list(range(csm.shape[0]))

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_groups_become_adjacent(self, algorithm):
        # Columns {0,5} and {2,7} are strongly similar; every algorithm
        # must place each pair adjacently.
        csm = np.zeros((8, 8))
        for a, b in [(0, 5), (2, 7)]:
            csm[a, b] = csm[b, a] = 1.0
        order = algorithm(csm).tolist()
        assert abs(order.index(0) - order.index(5)) == 1
        assert abs(order.index(2) - order.index(7)) == 1

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_empty_similarity_is_safe(self, algorithm):
        order = algorithm(np.zeros((6, 6)))
        assert sorted(order.tolist()) == list(range(6))

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_deterministic(self, algorithm, structured_matrix):
        csm = column_similarity_matrix(structured_matrix)
        assert np.array_equal(algorithm(csm), algorithm(csm))

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_single_column(self, algorithm):
        assert algorithm(np.zeros((1, 1))).tolist() == [0]

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_two_columns(self, algorithm):
        csm = np.array([[0.0, 0.4], [0.4, 0.0]])
        assert sorted(algorithm(csm).tolist()) == [0, 1]


class TestPathCover:
    def test_heaviest_edges_chosen_first(self):
        csm = np.zeros((4, 4))
        csm[0, 1] = csm[1, 0] = 0.9
        csm[1, 2] = csm[2, 1] = 0.5
        csm[2, 3] = csm[3, 2] = 0.8
        order = path_cover_order(csm).tolist()
        # All three edges are compatible as one path 0-1-2-3.
        assert order in ([0, 1, 2, 3], [3, 2, 1, 0])

    def test_no_vertex_exceeds_degree_two(self):
        # Star similarity: centre 0 similar to everyone — a path can
        # use at most two of those edges.
        csm = np.zeros((5, 5))
        csm[0, 1:] = csm[1:, 0] = 0.9
        order = path_cover_order(csm).tolist()
        pos = order.index(0)
        neighbours = {order[pos - 1] if pos else None, order[pos + 1] if pos < 4 else None}
        assert len([n for n in neighbours if n is not None]) <= 2

    def test_cycle_avoided(self):
        # Triangle: only two of the three edges may be used.
        csm = _block_csm(3, [[0, 1, 2]])
        order = path_cover_order(csm)
        assert sorted(order.tolist()) == [0, 1, 2]

    def test_plus_variant_also_covers(self):
        csm = _block_csm(9, [[0, 3, 6], [1, 4, 7]])
        order = path_cover_plus_order(csm)
        assert sorted(order.tolist()) == list(range(9))


class TestMatching:
    def test_chains_follow_i_before_j(self):
        # Edge (i, j) means i precedes j; 0->2 and 2 has no successor.
        csm = np.zeros((3, 3))
        csm[0, 2] = csm[2, 0] = 0.9
        order = matching_order(csm).tolist()
        assert order.index(0) < order.index(2)

    def test_predecessor_and_successor_both_allowed(self):
        # Chain 0 -> 1 -> 2 uses column 1 as both successor and
        # predecessor (the bipartite trick of Section 5.2).
        csm = np.zeros((3, 3))
        csm[0, 1] = csm[1, 0] = 1.0
        csm[1, 2] = csm[2, 1] = 0.9
        order = matching_order(csm).tolist()
        assert order == [0, 1, 2]


class TestTsp:
    def test_finds_optimal_on_block_instance(self):
        groups = [[0, 2, 4], [1, 3, 5]]
        csm = _block_csm(6, groups)
        order = tsp_order(csm)
        # Optimal open path keeps each group contiguous: gain = 4*0.9.
        assert tour_gain(csm, order) == pytest.approx(4 * 0.9)

    def test_improves_over_identity(self, rng):
        m = 12
        sym = rng.random((m, m))
        sym = (sym + sym.T) / 2
        np.fill_diagonal(sym, 0.0)
        order = tsp_order(sym)
        assert tour_gain(sym, order) >= tour_gain(sym, np.arange(m))

    def test_tour_gain_helper(self):
        csm = np.array([[0.0, 0.3, 0.0], [0.3, 0.0, 0.5], [0.0, 0.5, 0.0]])
        assert tour_gain(csm, np.array([0, 1, 2])) == pytest.approx(0.8)

    def test_neighbour_list_bound_respected(self, rng):
        m = 20
        sym = rng.random((m, m))
        sym = (sym + sym.T) / 2
        np.fill_diagonal(sym, 0.0)
        order = tsp_order(sym, neighbours=3, max_rounds=5)
        assert sorted(order.tolist()) == list(range(m))

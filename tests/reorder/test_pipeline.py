"""Tests for the reordering pipelines (Section 5.3)."""

import numpy as np
import pytest

from repro.core.csrv import CSRVMatrix
from repro.core.gcm import GrammarCompressedMatrix
from repro.errors import MatrixFormatError
from repro.reorder.pipeline import (
    REORDER_METHODS,
    compress_with_reordering,
    reorder_columns,
)


def _scattered_matrix(rng, n=300, n_groups=4, copies=4):
    """Correlated column groups interleaved so reordering has work to do."""
    latent = rng.integers(0, 6, size=(n, n_groups))
    cols = []
    for g in range(n_groups):
        mapping = np.round(rng.uniform(1, 9, size=6), 1)
        for _ in range(copies):
            cols.append(mapping[latent[:, g]])
    matrix = np.column_stack(cols)
    perm = rng.permutation(matrix.shape[1])
    return matrix[:, perm]


class TestReorderColumns:
    @pytest.mark.parametrize("method", REORDER_METHODS)
    def test_returns_permutation(self, method, rng):
        matrix = _scattered_matrix(rng)
        order = reorder_columns(matrix, method=method, k=4)
        assert sorted(order.tolist()) == list(range(matrix.shape[1]))

    def test_unknown_method_rejected(self, rng):
        with pytest.raises(MatrixFormatError):
            reorder_columns(_scattered_matrix(rng), method="magic")

    def test_unknown_pruning_rejected(self, rng):
        with pytest.raises(MatrixFormatError):
            reorder_columns(_scattered_matrix(rng), pruning="fancy")

    @pytest.mark.parametrize("pruning", ["none", "local", "global"])
    def test_pruning_modes(self, pruning, rng):
        matrix = _scattered_matrix(rng)
        order = reorder_columns(matrix, method="pathcover", k=4, pruning=pruning)
        assert sorted(order.tolist()) == list(range(matrix.shape[1]))

    def test_reordering_improves_grammar_compression(self, rng):
        # The headline claim of Section 5: scattered correlated columns
        # compress better after reordering.
        matrix = _scattered_matrix(rng, n=400)
        base = GrammarCompressedMatrix.compress(matrix, variant="re_32")
        order = reorder_columns(matrix, method="pathcover", k=8)
        reordered = GrammarCompressedMatrix.compress(
            CSRVMatrix.from_dense(matrix, column_order=order), variant="re_32"
        )
        assert reordered.size_bytes() < base.size_bytes()

    def test_reordered_matrix_still_correct(self, rng):
        matrix = _scattered_matrix(rng)
        order = reorder_columns(matrix, method="mwm", k=4)
        gm = GrammarCompressedMatrix.compress(
            CSRVMatrix.from_dense(matrix, column_order=order)
        )
        x = rng.standard_normal(matrix.shape[1])
        assert np.allclose(gm.right_multiply(x), matrix @ x)


class TestCompressWithReordering:
    def test_winner_reported(self, rng):
        matrix = _scattered_matrix(rng)
        result = compress_with_reordering(matrix, variant="re_32", n_blocks=4)
        assert result.method in ("pathcover", "mwm")
        assert set(result.sizes_by_method) == {"pathcover", "mwm"}

    def test_winner_is_smallest(self, rng):
        matrix = _scattered_matrix(rng)
        result = compress_with_reordering(matrix, variant="re_32", n_blocks=4)
        assert result.sizes_by_method[result.method] == min(
            result.sizes_by_method.values()
        )

    def test_result_matrix_correct(self, rng):
        matrix = _scattered_matrix(rng)
        result = compress_with_reordering(matrix, variant="re_iv", n_blocks=4)
        x = rng.standard_normal(matrix.shape[1])
        y = rng.standard_normal(matrix.shape[0])
        assert np.allclose(result.matrix.right_multiply(x, threads=2), matrix @ x)
        assert np.allclose(result.matrix.left_multiply(y, threads=2), y @ matrix)

    def test_per_block_orders_returned(self, rng):
        matrix = _scattered_matrix(rng)
        result = compress_with_reordering(matrix, n_blocks=4, variant="re_32")
        assert len(result.orders) == 4
        for order in result.orders:
            assert sorted(order.tolist()) == list(range(matrix.shape[1]))

    def test_custom_method_list(self, rng):
        matrix = _scattered_matrix(rng)
        result = compress_with_reordering(
            matrix, variant="re_32", n_blocks=2, methods=("lkh",)
        )
        assert result.method == "lkh"

    def test_empty_methods_rejected(self, rng):
        with pytest.raises(MatrixFormatError):
            compress_with_reordering(_scattered_matrix(rng), methods=())

    def test_lossless(self, rng):
        matrix = _scattered_matrix(rng)
        result = compress_with_reordering(matrix, variant="re_ans", n_blocks=3)
        assert np.allclose(result.matrix.to_dense(), matrix)

    def test_intra_row_candidates(self, rng):
        matrix = _scattered_matrix(rng)
        result = compress_with_reordering(
            matrix,
            variant="re_ans",
            n_blocks=3,
            methods=("pathcover", "intra-freq", "intra-code"),
        )
        assert set(result.sizes_by_method) == {
            "pathcover",
            "intra-freq",
            "intra-code",
        }
        assert result.sizes_by_method[result.method] == min(
            result.sizes_by_method.values()
        )
        x = rng.standard_normal(matrix.shape[1])
        assert np.allclose(result.matrix.right_multiply(x, threads=2), matrix @ x)

    def test_intra_only_skips_similarity(self, rng):
        # With only intra-row candidates no CSM should be needed; this
        # must work on a matrix whose similarity computation would be
        # comparatively expensive.
        matrix = _scattered_matrix(rng)
        result = compress_with_reordering(
            matrix, variant="re_32", n_blocks=2, methods=("intra-freq",)
        )
        assert result.method == "intra-freq"
        assert result.orders == []
        assert np.allclose(result.matrix.to_dense(), matrix)

    def test_intra_freq_wins_on_row_permuted_data(self, rng):
        # Rows share value sets but in shuffled per-row layouts: no
        # single column permutation can align them, intra-row can.
        base = np.array([1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5, 8.5])
        rows = [base[rng.permutation(8)] for _ in range(240)]
        matrix = np.array(rows)
        result = compress_with_reordering(
            matrix,
            variant="re_32",
            n_blocks=2,
            methods=("pathcover", "intra-code"),
        )
        assert result.method == "intra-code"

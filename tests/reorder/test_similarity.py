"""Tests for the column-column similarity matrix (Section 5.1)."""

import numpy as np
import pytest

from repro.errors import MatrixFormatError
from repro.reorder.similarity import (
    column_codes,
    column_similarity_matrix,
    prune_global,
    prune_local,
    similarity_edges,
)


class TestColumnCodes:
    def test_zero_maps_to_zero(self):
        matrix = np.array([[0.0, 1.0], [2.0, 0.0]])
        codes, _ = column_codes(matrix)
        assert codes[0, 0] == 0
        assert codes[1, 1] == 0

    def test_equal_values_equal_codes(self):
        matrix = np.array([[1.5], [2.5], [1.5]])
        codes, n_codes = column_codes(matrix)
        assert codes[0, 0] == codes[2, 0] != codes[1, 0]
        assert n_codes[0] == 3  # zero + two distinct values

    def test_rejects_1d(self):
        with pytest.raises(MatrixFormatError):
            column_codes(np.ones(3))


class TestCSM:
    def test_paper_example_csm_12(self, paper_matrix):
        # Section 5.1: CSM[1][2] = 2/6 (pair ⟨1.2, 3.4⟩ occurs 3 times
        # = 2 repetitions; other pairs contain zeros).
        csm = column_similarity_matrix(paper_matrix)
        assert csm[0, 1] == pytest.approx(1 / 3)

    def test_symmetric_zero_diagonal(self, structured_matrix):
        csm = column_similarity_matrix(structured_matrix)
        assert np.allclose(csm, csm.T)
        assert np.allclose(np.diag(csm), 0.0)

    def test_identical_columns_max_similarity(self):
        col = np.array([1.0, 2.0, 1.0, 2.0, 1.0, 2.0])
        matrix = np.column_stack([col, col])
        csm = column_similarity_matrix(matrix)
        # 6 pairs, 2 distinct -> 4 repetitions -> 4/6.
        assert csm[0, 1] == pytest.approx(4 / 6)

    def test_unrelated_unique_columns_zero_similarity(self):
        matrix = np.column_stack([np.arange(1, 9), np.arange(11, 19)])
        csm = column_similarity_matrix(matrix.astype(float))
        assert csm[0, 1] == 0.0

    def test_zeros_excluded_from_pairs(self):
        # The repeated pair (1, 2) appears twice, but one side zero
        # never counts.
        matrix = np.array([[1.0, 2.0], [1.0, 2.0], [1.0, 0.0], [0.0, 2.0]])
        csm = column_similarity_matrix(matrix)
        assert csm[0, 1] == pytest.approx(1 / 4)

    def test_row_sampling_keeps_scale(self, rng):
        col = rng.choice([1.0, 2.0], size=2000)
        matrix = np.column_stack([col, col])
        full = column_similarity_matrix(matrix)
        sampled = column_similarity_matrix(matrix, sample_rows=500, seed=1)
        # Both near the asymptotic value 1 - 2/n ≈ 1.
        assert sampled[0, 1] == pytest.approx(full[0, 1], abs=0.05)

    def test_single_column(self):
        csm = column_similarity_matrix(np.ones((5, 1)))
        assert csm.shape == (1, 1)
        assert csm[0, 0] == 0.0


class TestPruning:
    @pytest.fixture
    def csm(self, rng):
        m = 10
        sym = rng.random((m, m))
        sym = (sym + sym.T) / 2
        np.fill_diagonal(sym, 0.0)
        return sym

    def test_local_keeps_top_k_per_column(self, csm):
        pruned = prune_local(csm, k=2)
        for i in range(csm.shape[0]):
            kept = np.count_nonzero(pruned[i])
            assert kept >= 2  # own top-2 (plus entries kept by peers)

    def test_local_result_symmetric(self, csm):
        pruned = prune_local(csm, k=3)
        assert np.allclose(pruned, pruned.T)

    def test_local_never_invents_scores(self, csm):
        pruned = prune_local(csm, k=2)
        mask = pruned > 0
        assert np.allclose(pruned[mask], csm[mask])

    def test_global_budget(self, csm):
        m = csm.shape[0]
        k = 2
        pruned = prune_global(csm, k=k)
        # At most m*k/2 undirected entries -> m*k nonzeros in the
        # symmetric matrix.
        assert np.count_nonzero(pruned) <= m * k

    def test_global_keeps_heaviest(self, csm):
        pruned = prune_global(csm, k=1)
        iu = np.triu_indices_from(csm, k=1)
        heaviest = csm[iu].max()
        assert pruned.max() == pytest.approx(heaviest)

    def test_invalid_k(self, csm):
        with pytest.raises(MatrixFormatError):
            prune_local(csm, k=0)
        with pytest.raises(MatrixFormatError):
            prune_global(csm, k=0)

    def test_non_square_rejected(self):
        with pytest.raises(MatrixFormatError):
            prune_local(np.ones((2, 3)), k=1)


class TestEdges:
    def test_sorted_descending(self, structured_matrix):
        csm = column_similarity_matrix(structured_matrix)
        edges = similarity_edges(csm)
        weights = [w for w, _i, _j in edges]
        assert weights == sorted(weights, reverse=True)

    def test_only_upper_triangle(self, structured_matrix):
        csm = column_similarity_matrix(structured_matrix)
        for _w, i, j in similarity_edges(csm):
            assert i < j

    def test_zero_weights_excluded(self):
        csm = np.zeros((4, 4))
        csm[0, 1] = csm[1, 0] = 0.5
        edges = similarity_edges(csm)
        assert edges == [(0.5, 0, 1)]

    def test_deterministic_tie_break(self):
        csm = np.zeros((4, 4))
        for i, j in [(0, 1), (2, 3)]:
            csm[i, j] = csm[j, i] = 0.7
        assert similarity_edges(csm) == [(0.7, 0, 1), (0.7, 2, 3)]

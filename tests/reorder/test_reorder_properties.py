"""Property-based tests for the reordering stack."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reorder.matching import matching_order
from repro.reorder.path_cover import path_cover_order
from repro.reorder.similarity import (
    column_similarity_matrix,
    prune_global,
    prune_local,
    similarity_edges,
)
from repro.reorder.tsp import tour_gain, tsp_order


@st.composite
def random_csm(draw):
    m = draw(st.integers(min_value=2, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    sym = rng.random((m, m))
    sym = (sym + sym.T) / 2
    np.fill_diagonal(sym, 0.0)
    # Random sparsification keeps edge cases (empty rows) in play.
    mask = rng.random((m, m)) < draw(st.floats(min_value=0.0, max_value=1.0))
    sym = np.where(mask | mask.T, sym, 0.0)
    return sym


@settings(max_examples=50, deadline=None)
@given(csm=random_csm())
def test_all_algorithms_always_return_permutations(csm):
    m = csm.shape[0]
    for algo in (path_cover_order, matching_order, tsp_order):
        order = algo(csm)
        assert sorted(order.tolist()) == list(range(m))


@settings(max_examples=40, deadline=None)
@given(csm=random_csm(), k=st.integers(min_value=1, max_value=6))
def test_pruning_is_contractive(csm, k):
    for pruned in (prune_local(csm, k), prune_global(csm, k)):
        assert pruned.shape == csm.shape
        assert np.allclose(pruned, pruned.T)
        # Never invents weight, never increases any entry.
        assert np.all(pruned <= csm + 1e-12)
        assert np.count_nonzero(pruned) <= np.count_nonzero(csm)


@settings(max_examples=40, deadline=None)
@given(csm=random_csm())
def test_edges_cover_all_positive_entries(csm):
    edges = similarity_edges(csm)
    iu, ju = np.triu_indices(csm.shape[0], k=1)
    positive = int(np.count_nonzero(csm[iu, ju] > 0))
    assert len(edges) == positive


@settings(max_examples=30, deadline=None)
@given(csm=random_csm())
def test_tsp_never_worse_than_identity(csm):
    order = tsp_order(csm)
    assert tour_gain(csm, order) >= tour_gain(csm, np.arange(csm.shape[0])) - 1e-12


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=30),
    m=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_csm_bounded_by_one(n, m, seed):
    rng = np.random.default_rng(seed)
    matrix = rng.choice([0.0, 1.0, 2.0], size=(n, m))
    csm = column_similarity_matrix(matrix)
    # At most n pairs per column pair, minus one per distinct value:
    # RPNZ <= n - 1, so CSM < 1.
    assert np.all(csm >= 0.0)
    assert np.all(csm < 1.0)

"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro
import repro.bench.parallel
import repro.core.entropy
import repro.encoders.int_vector
import repro.encoders.varint
import repro.formats

MODULES = [
    repro,
    repro.formats,
    repro.encoders.int_vector,
    repro.encoders.varint,
    repro.core.entropy,
    repro.bench.parallel,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module, raise_on_error=False, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failures in {module.__name__}"
    assert result.attempted > 0, f"no doctests collected from {module.__name__}"

"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP 660 editable
installs fail; this shim lets ``pip install -e .`` fall back to the
classic ``setup.py develop`` path.  The version is read textually from
``src/repro/_version.py`` (the single source every other surface —
``repro.__version__``, ``python -m repro --version``, the server's
``/stats`` payload — imports), so installing never imports the package.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_version_file = Path(__file__).parent / "src" / "repro" / "_version.py"
_match = re.search(r'__version__\s*=\s*"([^"]+)"', _version_file.read_text())
if _match is None:
    raise RuntimeError(f"no __version__ in {_version_file}")

setup(
    name="repro",
    version=_match.group(1),
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro": ["py.typed"]},
)

"""Serving throughput: batched panel multiplication vs. looped MVMs.

The serving engine answers a ``k``-vector request with one panel
kernel call (:mod:`repro.serve.batch`) instead of ``k`` single MVMs.
This benchmark quantifies that win per representation: for each
format it times

- **looped** — ``k`` calls to ``right_multiply`` (the pre-serving
  access pattern; ``re_iv``/``re_ans`` re-pay the unpack/entropy
  decode of ``C`` on every call), and
- **batched** — one ``batch_right_multiply`` over the same ``(m, k)``
  panel,

and reports both as vectors/second plus the speedup ratio.  The
grammar-compressed variants are where batching matters most: the
engine build and storage decode amortise over the whole panel.

``pytest benchmarks/bench_serve_throughput.py --benchmark-only`` times
the two paths; running as a script prints the full table for every
format (dense / csrv / re_32 / re_iv / re_ans / blocked-auto / cla).
"""

from __future__ import annotations

import sys
import time

import numpy as np
import pytest

from repro.baselines import DenseMatrix
from repro.bench.reporting import format_table
from repro.cla import CLAMatrix
from repro.core.blocked import BlockedMatrix
from repro.core.csrv import CSRVMatrix
from repro.core.gcm import GrammarCompressedMatrix
from repro.serve.batch import batch_right_multiply, looped_right_multiply

try:
    from benchmarks.conftest import bench_matrix
except ImportError:
    from conftest import bench_matrix

#: Panel width of the serving workload (ISSUE acceptance: k = 64).
K_VECTORS = 64

#: Datasets exercised in script mode.
DATASETS = ("census", "covtype")

#: Formats compared; ``blocked`` uses per-block auto format selection.
FORMATS = ("dense", "csrv", "re_32", "re_iv", "re_ans", "blocked", "cla")


def build(matrix: np.ndarray, fmt: str):
    """Compress ``matrix`` into the requested representation."""
    if fmt == "dense":
        return DenseMatrix(matrix)
    if fmt == "csrv":
        return CSRVMatrix.from_dense(matrix)
    if fmt in ("re_32", "re_iv", "re_ans"):
        return GrammarCompressedMatrix.compress(matrix, variant=fmt)
    if fmt == "blocked":
        return BlockedMatrix.compress(matrix, variant="auto", n_blocks=8)
    if fmt == "cla":
        return CLAMatrix.compress(matrix)
    raise ValueError(fmt)


def _best_seconds(fn, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall time — robust to scheduler noise."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure(compressed, panel: np.ndarray, repeats: int = 3) -> dict:
    """Throughput of the looped and batched paths on one panel."""
    result_batched = batch_right_multiply(compressed, panel)
    result_looped = looped_right_multiply(compressed, panel)
    assert np.allclose(result_batched, result_looped)
    k = panel.shape[1]
    t_loop = _best_seconds(lambda: looped_right_multiply(compressed, panel), repeats)
    t_batch = _best_seconds(lambda: batch_right_multiply(compressed, panel), repeats)
    return {
        "looped_vps": k / t_loop,
        "batched_vps": k / t_batch,
        "speedup": t_loop / t_batch,
    }


def _panel(matrix: np.ndarray, k: int = K_VECTORS) -> np.ndarray:
    rng = np.random.default_rng(7)
    return rng.standard_normal((matrix.shape[1], k))


# -- pytest benchmarks ----------------------------------------------------------------


@pytest.mark.parametrize("fmt", FORMATS)
def test_batched_panel(benchmark, fmt):
    matrix = bench_matrix("census")
    compressed = build(matrix, fmt)
    panel = _panel(matrix)
    result = benchmark(lambda: batch_right_multiply(compressed, panel))
    assert result.shape == (matrix.shape[0], K_VECTORS)


@pytest.mark.parametrize("fmt", ("re_32", "re_iv", "re_ans"))
def test_looped_baseline(benchmark, fmt):
    matrix = bench_matrix("census")
    compressed = build(matrix, fmt)
    panel = _panel(matrix)
    result = benchmark(lambda: looped_right_multiply(compressed, panel))
    assert result.shape == (matrix.shape[0], K_VECTORS)


# -- script mode ----------------------------------------------------------------------


def main() -> int:
    for name in DATASETS:
        matrix = bench_matrix(name)
        panel = _panel(matrix)
        rows = []
        for fmt in FORMATS:
            compressed = build(matrix, fmt)
            m = measure(compressed, panel)
            rows.append(
                [
                    fmt,
                    f"{m['looped_vps']:,.0f}",
                    f"{m['batched_vps']:,.0f}",
                    f"{m['speedup']:.1f}x",
                ]
            )
        print(
            format_table(
                ["format", "looped vec/s", "batched vec/s", "speedup"],
                rows,
                title=(
                    f"{name} ({matrix.shape[0]}x{matrix.shape[1]}), "
                    f"k={K_VECTORS} right-multiplications"
                ),
            )
        )
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())

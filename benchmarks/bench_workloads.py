"""Workload bench: whole iterative algorithms, compressed vs dense.

The solve layer's claim is that grammar-compressed MVM pays off when it
is the inner kernel of a *whole algorithm* — so this benchmark runs the
algorithms, not the kernel: PageRank, power iteration, and ridge-CG per
registered format, reporting

- **wall-clock** — total solve seconds and per-iteration p50 latency
  (from the solver's own :class:`~repro.solve.SolveTrace`), against
  the same algorithm run through the ``dense`` format;
- **peak memory** — the package's modelled MVM peak
  (:func:`repro.bench.memory.peak_mvm_bytes`) per representation, as
  % of dense — the figure that decides whether a workload *fits*;
- **agreement** — max |Δ| of each format's solution against the dense
  run's (losslessness check riding along).

Run as a script::

    PYTHONPATH=src python benchmarks/bench_workloads.py            # full
    PYTHONPATH=src python benchmarks/bench_workloads.py --quick    # CI smoke

The JSON report (``--output``) follows the ``BENCH_*.json`` trajectory
convention; the nightly bench workflow uploads it as an artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

import repro
from repro.bench.memory import peak_mvm_bytes
from repro.bench.reporting import format_table

SCHEMA = "bench_workloads/v1"

#: Formats compared in full mode (every format that multiplies in
#: compressed space; gzip/xz decompress wholesale and only distort the
#: tables).
FULL_FORMATS = ("dense", "csr", "csrv", "cla", "re_32", "re_iv", "re_ans",
                "blocked", "sharded")

#: Quick-mode line-up for the CI smoke configuration.
QUICK_FORMATS = ("dense", "csrv", "re_ans", "sharded")

BUILD_OPTS = {
    "blocked": {"variant": "re_iv", "n_blocks": 4},
    "sharded": {"n_shards": 4},
}


def _square_workload(rows: int, seed: int = 5) -> np.ndarray:
    """A square nonnegative matrix with grammar-friendly repetition."""
    rng = np.random.default_rng(seed)
    values = np.round(rng.uniform(0.5, 4.5, size=6), 1)
    matrix = values[rng.integers(0, 6, size=(rows, rows))]
    matrix[rng.random((rows, rows)) >= 0.3] = 0.0
    matrix[rng.integers(0, rows, size=max(1, rows // 50))] = 0.0  # dangling
    return matrix


def _workload_params(dense: np.ndarray, iterations: int) -> dict:
    rng = np.random.default_rng(11)
    return {
        "pagerank": {"iterations": iterations, "tol": 1e-12},
        "power": {"iterations": iterations, "tol": 1e-12},
        "ridge": {
            "iterations": iterations,
            "tol": 1e-12,
            "alpha": 0.5,
            "b": rng.standard_normal(dense.shape[0]),
        },
    }


def bench_format(name: str, dense: np.ndarray, params: dict,
                 baseline: dict | None) -> dict:
    """Build one format and run every workload on it."""
    matrix = repro.compress(dense, format=name, **BUILD_OPTS.get(name, {}))
    out = {
        "size_bytes": int(matrix.size_bytes()),
        "size_pct": 100.0 * matrix.size_bytes() / (dense.size * 8),
        "peak_bytes": int(peak_mvm_bytes(matrix)),
        "peak_pct": 100.0 * peak_mvm_bytes(matrix) / (dense.size * 8),
        "workloads": {},
    }
    for algo, algo_params in params.items():
        result = repro.solve(matrix, algorithm=algo, **algo_params)
        latency = result.trace.latency_summary()
        row = {
            "seconds": result.total_seconds,
            "iterations": result.iterations,
            "converged": bool(result.converged),
            "p50_ms": latency.get("p50_ms"),
            "residual": result.residual,
        }
        if baseline is not None:
            base = baseline["workloads"][algo]
            row["vs_dense"] = result.total_seconds / base["seconds"]
            row["max_delta_vs_dense"] = float(
                np.max(np.abs(np.asarray(result.x) - base["_x"]))
            )
        else:
            row["_x"] = np.asarray(result.x)
        out["workloads"][algo] = row
    return out


def run(rows: int, iterations: int, formats: tuple[str, ...]) -> dict:
    dense = _square_workload(rows)
    params = _workload_params(dense, iterations)
    report = {
        "schema": SCHEMA,
        "command": " ".join(sys.argv),
        "rows": int(rows),
        "iterations_cap": int(iterations),
        "formats": {},
    }
    baseline = None
    for name in formats:
        entry = bench_format(name, dense, params, baseline)
        if baseline is None:
            baseline = entry  # first format is the dense reference
        report["formats"][name] = entry

    # The baseline's solution vectors are working state, not report data.
    for entry in report["formats"].values():
        for row in entry["workloads"].values():
            row.pop("_x", None)

    for algo in params:
        rows_out = [
            [
                name,
                f"{entry['size_pct']:.1f}",
                f"{entry['peak_pct']:.1f}",
                f"{entry['workloads'][algo]['seconds']:.3f}",
                f"{entry['workloads'][algo].get('vs_dense', 1.0):.2f}x",
                entry["workloads"][algo]["iterations"],
            ]
            for name, entry in report["formats"].items()
        ]
        print(
            format_table(
                ["format", "size %", "peak mem %", "seconds", "vs dense",
                 "iters"],
                rows_out,
                title=f"{algo} ({rows}x{rows}, cap {iterations} iterations)",
            )
        )
        print()
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small matrix + few formats (the CI smoke configuration)",
    )
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--iterations", type=int, default=None)
    parser.add_argument(
        "--output", default=None, help="write the JSON report here"
    )
    args = parser.parse_args(argv)

    if args.quick:
        rows, iterations, formats = 120, 60, QUICK_FORMATS
    else:
        rows, iterations, formats = 600, 100, FULL_FORMATS
    if args.rows is not None:
        rows = args.rows
    if args.iterations is not None:
        iterations = args.iterations

    report = run(rows, iterations, formats)
    if args.output:
        Path(args.output).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print("report written to", args.output)
    return 0


if __name__ == "__main__":
    sys.exit(main())

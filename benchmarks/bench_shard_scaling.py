"""Shard scaling: parallel shard builds and scatter-gather MVM vs shard count.

The sharding layer (:mod:`repro.shard`) trades one monolithic RePair
build and one registry entry for ``s`` independent per-shard builds and
``s`` independently loadable sections.  This benchmark measures the two
scaling claims behind that trade:

- **build** — wall-clock to compress the same matrix into 1, 2, 4, 8
  shards, sequentially and on a :class:`~repro.serve.executor.BlockExecutor`
  pool (shard builds are embarrassingly parallel);
- **multiply** — single-vector and ``k``-panel scatter-gather MVM
  latency per shard count (1 thread vs a worker pool), with dense
  parity asserted on every configuration.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py
    PYTHONPATH=src python benchmarks/bench_shard_scaling.py --quick \
        --output bench_shard_scaling.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from statistics import median

import numpy as np

from repro.bench.reporting import format_table
from repro.datasets import get_dataset
from repro.serve.executor import BlockExecutor
from repro.shard import build_sharded, plan_shards

SCHEMA = "bench_shard_scaling/v1"

SHARD_COUNTS = (1, 2, 4, 8)

#: Panel width of the serving workload.
K_VECTORS = 32


def _median_time(fn, repeats: int) -> tuple[float, object]:
    times, result = [], None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return median(times), result


def run(dataset: str, n_rows: int, workers: int, repeats: int) -> dict:
    matrix = np.asarray(get_dataset(dataset, n_rows=n_rows).matrix)
    x = np.linspace(-1.0, 1.0, matrix.shape[1])
    panel = np.linspace(-1.0, 1.0, matrix.shape[1] * K_VECTORS).reshape(
        matrix.shape[1], K_VECTORS
    )
    expected_x = matrix @ x
    expected_panel = matrix @ panel
    rows = []
    with BlockExecutor(workers) as executor:
        for n_shards in SHARD_COUNTS:
            plan = plan_shards(matrix, n_shards=n_shards)
            build_seq, sharded = _median_time(
                lambda: build_sharded(matrix, plan=plan), 1
            )
            build_par, _ = _median_time(
                lambda: build_sharded(matrix, plan=plan, executor=executor), 1
            )
            mvm_1t, result = _median_time(
                lambda: sharded.right_multiply(x), repeats
            )
            assert np.allclose(result, expected_x)
            mvm_exec, result = _median_time(
                lambda: sharded.right_multiply(x, executor=executor), repeats
            )
            assert np.allclose(result, expected_x)
            panel_1t, result = _median_time(
                lambda: sharded.right_multiply_matrix(panel), repeats
            )
            assert np.allclose(result, expected_panel)
            rows.append(
                {
                    "n_shards": n_shards,
                    "formats": list(plan.formats),
                    "size_bytes": sharded.size_bytes(),
                    "build_seconds_sequential": build_seq,
                    "build_seconds_parallel": build_par,
                    "mvm_seconds_1_thread": mvm_1t,
                    "mvm_seconds_executor": mvm_exec,
                    "panel_seconds_k32": panel_1t,
                }
            )
    return {
        "schema": SCHEMA,
        "dataset": dataset,
        "shape": list(matrix.shape),
        "workers": workers,
        "repeats": repeats,
        "rows": rows,
    }


def print_report(report: dict) -> None:
    table = [
        [
            r["n_shards"],
            ",".join(sorted(set(r["formats"]))),
            f"{r['size_bytes']:,}",
            f"{1000 * r['build_seconds_sequential']:.1f}",
            f"{1000 * r['build_seconds_parallel']:.1f}",
            f"{1000 * r['mvm_seconds_1_thread']:.3f}",
            f"{1000 * r['mvm_seconds_executor']:.3f}",
            f"{1000 * r['panel_seconds_k32']:.3f}",
        ]
        for r in report["rows"]
    ]
    print(
        format_table(
            [
                "shards", "formats", "bytes", "build ms", "par build ms",
                "mvm ms", "exec mvm ms", f"panel k={K_VECTORS} ms",
            ],
            table,
            title=(
                f"{report['dataset']} {tuple(report['shape'])}, "
                f"{report['workers']} workers"
            ),
        )
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="covtype")
    parser.add_argument("--rows", type=int, default=3000)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--quick", action="store_true",
        help="small profile for CI smoke (400 rows, 2 repeats)",
    )
    parser.add_argument("--output", default=None, help="write JSON report")
    args = parser.parse_args(argv)
    if args.quick:
        args.rows, args.repeats = 400, 2
    report = run(args.dataset, args.rows, args.workers, args.repeats)
    print_report(report)
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Hot-path regression bench: compression build time and serve-path MVM.

This benchmark records the measurement trajectory for the repo's two
hottest paths (see ``BENCH_hotpaths.json``, committed at the repo
root):

- **compress** — separator-aware RePair, ``strategy="exact"`` (the
  pure-Python reference heap loop) vs ``strategy="batch"`` (the
  vectorised generation rounds), with the grammar sizes and the
  ``re_ans`` compression ratios of both, plus the exact grammar's
  fingerprint so seed drift is detectable;
- **cold_start** — server restart cost against a matrix store:
  catalog-driven registry open (O(rows)) vs directory scan
  (O(files) header reads) vs eager payload loading (O(bytes)),
  first-``/matrices`` latency, and one payload loaded mmap vs copy;
- **multiply** — per grammar variant, the served single-vector MVM
  latency in three configurations: *cold* (first request: storage
  decode + plan build + multiply, plan retention on), *warm* (every
  later request: retained plan, no decode, no rebuild), and
  *no-cache* (plan retention off — the pre-retention serving cost,
  paid on every request);
- **obs_overhead** — the tracing-off cost of the ``repro.obs``
  instrumentation on the warm MVM path: the same warm multiply bare
  vs wrapped in the serve layer's ``span("multiply.kernel", ...)``
  with no trace active (the no-op-span fast path every untraced
  request takes).  ``--check-baseline`` fails when the overhead
  reaches 5 %.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py            # full
    PYTHONPATH=src python benchmarks/bench_hotpaths.py --quick    # CI smoke

``--check-baseline PATH`` compares the measured warm latencies against
a previously committed run and exits non-zero when any regresses by
more than ``--tolerance`` (default 2x) — the CI perf-smoke gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from statistics import median

import numpy as np

from repro.core.csrv import CSRVMatrix
from repro.core.gcm import VARIANTS, GrammarCompressedMatrix, plan_cache
from repro.core.repair import repair_compress
from repro.datasets import get_dataset

#: Full-mode profiles: (dataset, synthetic rows).  ``mnist2m`` at 5000
#: rows is the largest (~1M CSRV symbols — the scale the exact RePair
#: caps out at, and where the batch strategy's speedup is measured).
FULL_PROFILES = (("census", 5000), ("airline78", 6000), ("mnist2m", 5000))

#: Quick-mode profile for the CI perf-smoke job.
QUICK_PROFILES = (("census", 400),)

SCHEMA = "bench_hotpaths/v1"

#: Cold-start store profiles: (n_matrices, rows, cols).  Full mode
#: builds a multi-hundred-MB store (24 dense payloads of ~12 MB plus a
#: sharded container) so the catalog-vs-scan registry-open gap is
#: measured at the scale the acceptance criterion names; quick mode
#: keeps the same shape at CI-smoke size.
COLD_START_FULL = (24, 1000, 1500)
COLD_START_QUICK = (6, 150, 200)


def _time_once(fn) -> tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def bench_compress(seq: np.ndarray, dense_bytes: int, values, shape) -> dict:
    """Time both RePair strategies and report sizes/ratios."""
    exact_seconds, exact = _time_once(lambda: repair_compress(seq))
    batch_seconds, batch = _time_once(
        lambda: repair_compress(seq, strategy="batch")
    )
    out = {
        "seq_len": int(seq.size),
        "exact_seconds": exact_seconds,
        "batch_seconds": batch_seconds,
        "batch_speedup": exact_seconds / batch_seconds,
        "exact_grammar_size": int(exact.size),
        "batch_grammar_size": int(batch.size),
        "batch_size_overhead_pct": 100.0 * batch.size / exact.size - 100.0,
        "exact_fingerprint": exact.fingerprint(),
    }
    for label, grammar in (("exact", exact), ("batch", batch)):
        gm = GrammarCompressedMatrix.from_grammar(grammar, values, shape, "re_ans")
        out[f"{label}_re_ans_ratio_pct"] = 100.0 * gm.size_bytes() / dense_bytes
    return out, exact


def bench_multiply(grammar, values, shape, warm_iters: int, cold_reps: int) -> dict:
    """Cold/warm/no-cache single-vector MVM latency per grammar variant."""
    rng = np.random.default_rng(0)
    x = rng.standard_normal(shape[1])
    results = {}
    for variant in VARIANTS:
        matrix = GrammarCompressedMatrix.from_grammar(grammar, values, shape, variant)
        # no-cache: per-call decode + schedule rebuild (retention off).
        matrix.enable_plan_retention(False)
        nocache = median(
            _time_once(lambda: matrix.right_multiply(x))[0]
            for _ in range(max(3, cold_reps))
        )
        # cold: first served request — fresh instance, retention on,
        # empty plan cache.  Instances share the storage arrays, so
        # re-instantiating is cheap; the cache is cleared so the cold
        # number includes a real decode + plan build.
        colds = []
        for _ in range(cold_reps):
            fresh = GrammarCompressedMatrix.from_grammar(
                grammar, values, shape, variant
            )
            fresh.enable_plan_retention(True)
            plan_cache().clear()
            colds.append(_time_once(lambda: fresh.right_multiply(x))[0])
        cold = median(colds)
        # warm: every later request on the retained plan.
        matrix.enable_plan_retention(True)
        matrix.right_multiply(x)  # warm it
        warm = median(
            _time_once(lambda: matrix.right_multiply(x))[0]
            for _ in range(warm_iters)
        )
        results[variant] = {
            "cold_seconds": cold,
            "warm_seconds": warm,
            "nocache_seconds": nocache,
            "warm_vs_cold": cold / warm,
            "warm_vs_nocache": nocache / warm,
        }
    return results


def bench_cold_start(n_matrices: int, rows: int, cols: int) -> dict:
    """Registry restart cost: catalog rows vs header scans vs payloads.

    Builds a temporary :class:`repro.store.MatrixStore` (dense payloads
    plus one sharded container) and times the three ways a server can
    come back up: ``catalog_open`` (``MatrixRegistry(store=...)`` —
    O(rows), the repro.store path), ``scan_open`` (directory scan with
    a header read per file — the pre-store path), and ``eager_load``
    (full payload deserialization — what restart would cost without
    lazy loading).  Also times the first ``/matrices`` listing after a
    catalog open, and one payload loaded mmap vs copy.
    """
    import shutil
    import tempfile

    from repro import formats
    from repro.io.serialize import load_matrix
    from repro.serve.registry import MatrixRegistry
    from repro.shard import build_sharded
    from repro.store import MatrixStore

    tmp = tempfile.mkdtemp(prefix="repro-coldstart-")
    try:
        rng = np.random.default_rng(7)
        store = MatrixStore(tmp)
        for i in range(max(2, n_matrices) - 1):
            dense = rng.random((rows, cols))
            store.add(f"m{i:03d}", formats.compress(dense, format="dense"))
        store.add(
            "sharded", build_sharded(rng.random((rows, cols)), n_shards=4)
        )

        scan_seconds, scan_reg = _time_once(lambda: MatrixRegistry(root=tmp))
        catalog_seconds, reg = _time_once(
            lambda: MatrixRegistry(store=tmp, mmap=True)
        )
        first_matrices_seconds, listing = _time_once(reg.entries)
        assert len(listing) == len(scan_reg.names())

        eager_seconds = 0.0
        for entry in store.entries():
            seconds, _ = _time_once(lambda: load_matrix(entry.path))
            eager_seconds += seconds

        path = store.path_of("m000")
        copy_seconds, _ = _time_once(lambda: load_matrix(path))
        mmap_seconds, _ = _time_once(lambda: load_matrix(path, mmap=True))
        return {
            "n_matrices": int(len(store)),
            "store_bytes": int(store.total_bytes()),
            "catalog_open_seconds": catalog_seconds,
            "scan_open_seconds": scan_seconds,
            "open_speedup": scan_seconds / catalog_seconds,
            "eager_load_seconds": eager_seconds,
            "eager_vs_catalog": eager_seconds / catalog_seconds,
            "first_matrices_seconds": first_matrices_seconds,
            "copy_load_seconds": copy_seconds,
            "mmap_load_seconds": mmap_seconds,
            "mmap_load_speedup": copy_seconds / mmap_seconds,
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def bench_obs_overhead(grammar, values, shape, iters: int) -> dict:
    """Tracing-off instrumentation cost on the warm serve MVM path.

    Measures the warm retained-plan multiply bare vs under the serve
    layer's ``span("multiply.kernel", ...)`` with **no trace active** —
    the no-op-span path every untraced request takes.  Samples are
    interleaved so clock drift hits both sides equally, and the
    per-side statistic is the **minimum** (the standard choice for a
    noise-dominated microbenchmark: upward noise never makes code
    faster, so min-vs-min isolates the instrumentation delta from CPU
    frequency drift that a median would fold in).
    """
    from repro.obs.trace import span

    rng = np.random.default_rng(1)
    x = rng.standard_normal(shape[1])
    matrix = GrammarCompressedMatrix.from_grammar(grammar, values, shape, "re_ans")
    matrix.enable_plan_retention(True)
    matrix.right_multiply(x)  # warm the retained plan

    def bare():
        return matrix.right_multiply(x)

    def instrumented():
        with span("multiply.kernel", matrix="bench", op="multiply", k=1):
            return matrix.right_multiply(x)

    bare_times, inst_times = [], []
    for _ in range(iters):
        bare_times.append(_time_once(bare)[0])
        inst_times.append(_time_once(instrumented)[0])
    bare_s = min(bare_times)
    inst_s = min(inst_times)
    return {
        "iters": iters,
        "bare_warm_seconds": bare_s,
        "instrumented_warm_seconds": inst_s,
        "overhead_pct": 100.0 * inst_s / bare_s - 100.0,
    }


def run(profiles, warm_iters: int, cold_reps: int, cold_start=None,
        obs_iters: int = 0) -> dict:
    report = {
        "schema": SCHEMA,
        "command": " ".join(sys.argv),
        "profiles": {},
    }
    first_grammar = None
    for name, rows in profiles:
        dense = np.asarray(get_dataset(name, n_rows=rows).matrix)
        csrv = CSRVMatrix.from_dense(dense)
        compress, exact_grammar = bench_compress(
            csrv.s, dense.size * 8, csrv.values, csrv.shape
        )
        if first_grammar is None:
            first_grammar = (exact_grammar, csrv.values, csrv.shape)
        multiply = bench_multiply(
            exact_grammar, csrv.values, csrv.shape, warm_iters, cold_reps
        )
        report["profiles"][name] = {
            "rows": int(dense.shape[0]),
            "cols": int(dense.shape[1]),
            "compress": compress,
            "multiply": multiply,
        }
        print(
            f"{name} ({dense.shape[0]}x{dense.shape[1]}, |S|="
            f"{compress['seq_len']:,}): compress exact "
            f"{compress['exact_seconds']:.3f}s vs batch "
            f"{compress['batch_seconds']:.3f}s "
            f"(x{compress['batch_speedup']:.1f}, "
            f"+{compress['batch_size_overhead_pct']:.2f}% size)"
        )
        for variant, m in multiply.items():
            print(
                f"  {variant}: cold {1e3 * m['cold_seconds']:.3f}ms, "
                f"warm {1e3 * m['warm_seconds']:.3f}ms "
                f"(x{m['warm_vs_cold']:.1f} vs cold, "
                f"x{m['warm_vs_nocache']:.1f} vs no-cache)"
            )
    if cold_start is not None:
        cs = bench_cold_start(*cold_start)
        report["cold_start"] = cs
        print(
            f"cold_start ({cs['n_matrices']} matrices, "
            f"{cs['store_bytes'] / 1e6:.0f}MB): catalog open "
            f"{1e3 * cs['catalog_open_seconds']:.1f}ms vs scan "
            f"{1e3 * cs['scan_open_seconds']:.1f}ms "
            f"(x{cs['open_speedup']:.1f}) vs eager load "
            f"{cs['eager_load_seconds']:.2f}s "
            f"(x{cs['eager_vs_catalog']:.0f}); first /matrices "
            f"{1e3 * cs['first_matrices_seconds']:.1f}ms; mmap load "
            f"{1e3 * cs['mmap_load_seconds']:.2f}ms vs copy "
            f"{1e3 * cs['copy_load_seconds']:.2f}ms "
            f"(x{cs['mmap_load_speedup']:.0f})"
        )
    if obs_iters and first_grammar is not None:
        obs = bench_obs_overhead(*first_grammar, obs_iters)
        report["obs_overhead"] = obs
        print(
            f"obs_overhead ({obs['iters']} interleaved iters): warm "
            f"{1e6 * obs['bare_warm_seconds']:.1f}us bare vs "
            f"{1e6 * obs['instrumented_warm_seconds']:.1f}us under a "
            f"no-op span ({obs['overhead_pct']:+.2f}%)"
        )
    return report


#: cold_start keys gated by ``--check-baseline``.  Sub-50ms timings on
#: shared CI runners are noise-dominated, so the regression limit gets
#: an absolute floor alongside the relative tolerance.
COLD_START_GATED_KEYS = (
    "catalog_open_seconds",
    "first_matrices_seconds",
    "mmap_load_seconds",
)

COLD_START_FLOOR_SECONDS = 0.05

#: The obs_overhead gate is self-relative (instrumented vs bare in the
#: *same* run), so it needs no baseline entry.  The absolute floor on
#: the delta keeps sub-microsecond timer noise from failing a 40us
#: kernel; a real regression (a span doing work while tracing is off)
#: costs far more than 5us.
OBS_OVERHEAD_LIMIT_PCT = 5.0
OBS_OVERHEAD_FLOOR_SECONDS = 5e-6


def check_baseline(report: dict, baseline_path: Path, tolerance: float) -> int:
    """Fail (return 1) if any warm latency regressed beyond tolerance."""
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for name, base_profile in baseline.get("profiles", {}).items():
        current = report["profiles"].get(name)
        if current is None:
            continue
        for variant, base_m in base_profile.get("multiply", {}).items():
            cur = current["multiply"].get(variant)
            if cur is None:
                failures.append(f"{name}/{variant}: missing from current run")
                continue
            limit = tolerance * base_m["warm_seconds"]
            if cur["warm_seconds"] > limit:
                failures.append(
                    f"{name}/{variant}: warm {1e3 * cur['warm_seconds']:.3f}ms "
                    f"> {tolerance:g}x baseline "
                    f"{1e3 * base_m['warm_seconds']:.3f}ms"
                )
    base_cold = baseline.get("cold_start")
    cur_cold = report.get("cold_start")
    if base_cold and cur_cold:
        for key in COLD_START_GATED_KEYS:
            if key not in base_cold or key not in cur_cold:
                continue
            limit = max(tolerance * base_cold[key], COLD_START_FLOOR_SECONDS)
            if cur_cold[key] > limit:
                failures.append(
                    f"cold_start/{key}: {1e3 * cur_cold[key]:.1f}ms > "
                    f"max({tolerance:g}x baseline "
                    f"{1e3 * base_cold[key]:.1f}ms, "
                    f"{1e3 * COLD_START_FLOOR_SECONDS:.0f}ms floor)"
                )
    obs = report.get("obs_overhead")
    if obs is not None:
        delta = obs["instrumented_warm_seconds"] - obs["bare_warm_seconds"]
        if (
            obs["overhead_pct"] >= OBS_OVERHEAD_LIMIT_PCT
            and delta > OBS_OVERHEAD_FLOOR_SECONDS
        ):
            failures.append(
                f"obs_overhead: no-op span costs {obs['overhead_pct']:.2f}% "
                f"({1e6 * delta:.1f}us) on the warm multiply — limit "
                f"{OBS_OVERHEAD_LIMIT_PCT:g}%"
            )
    if failures:
        print("PERF REGRESSION against", baseline_path, file=sys.stderr)
        for f in failures:
            print(" -", f, file=sys.stderr)
        return 1
    print(f"baseline check OK ({baseline_path}, tolerance {tolerance:g}x)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny profile + few iterations (the CI smoke configuration)",
    )
    parser.add_argument(
        "--output", default=None,
        help="write the JSON report here (default: BENCH_hotpaths.json at "
        "the repo root in full mode, stdout-only in quick mode)",
    )
    parser.add_argument(
        "--check-baseline", default=None, metavar="PATH",
        help="compare warm-multiply latencies against a committed report "
        "and exit 1 on regression",
    )
    parser.add_argument(
        "--tolerance", type=float, default=2.0,
        help="allowed warm-latency regression factor (default 2x)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        profiles, warm_iters, cold_reps = QUICK_PROFILES, 9, 3
        cold_start, obs_iters = COLD_START_QUICK, 200
    else:
        profiles, warm_iters, cold_reps = FULL_PROFILES, 21, 3
        cold_start, obs_iters = COLD_START_FULL, 600
    report = run(
        profiles, warm_iters, cold_reps,
        cold_start=cold_start, obs_iters=obs_iters,
    )

    output = args.output
    if output is None and not args.quick:
        output = str(Path(__file__).resolve().parent.parent / "BENCH_hotpaths.json")
    if output:
        Path(output).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print("report written to", output)

    if args.check_baseline:
        return check_baseline(report, Path(args.check_baseline), args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())

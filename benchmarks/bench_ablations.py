"""Ablations over the design choices behind the paper's system.

Not a paper table — these sweeps justify the defaults the paper (and
this reproduction) uses:

1. **Separator protection**: RePair's ``$`` exclusion costs almost
   nothing in compression but is what makes per-row evaluation
   (Lemma 3.3) possible.
2. **min_frequency**: the classic threshold of 2 vs lazier settings.
3. **Block count**: compression loss from splitting (cross-block
   sharing disappears) vs the parallelism it enables.
4. **CSM pruning**: none / local / global × k — the paper finds local
   pruning best (Section 5.3).
5. **PathCover vs PathCover+**: the paper reports the + variant always
   worse; the sweep shows it here too.
6. **rANS quantisation**: scale_bits vs blob size.
7. **auto vs fixed per-block format** (the Section 4.2 avenue).

Run as a script to print all sweeps; the pytest benchmarks time the
representative operations.
"""

from __future__ import annotations

import sys

import numpy as np
import pytest

from repro.bench.reporting import format_table, ratio_pct
from repro.core.blocked import BlockedMatrix
from repro.core.csrv import CSRVMatrix
from repro.core.gcm import GrammarCompressedMatrix
from repro.core.repair import repair_compress
from repro.encoders.rans import ans_compress
from repro.reorder.path_cover import path_cover_order, path_cover_plus_order
from repro.reorder.similarity import (
    column_similarity_matrix,
    prune_global,
    prune_local,
)

try:
    from benchmarks.conftest import bench_matrix
except ImportError:
    from conftest import bench_matrix


def _ratio(matrix, size: int) -> float:
    return ratio_pct(size, matrix.size * 8)


# -- 1. separator protection ----------------------------------------------------------


def separator_ablation(name: str) -> list:
    matrix = bench_matrix(name)
    csrv = CSRVMatrix.from_dense(matrix)
    protected = repair_compress(csrv.s, forbidden=0)
    # Unprotected RePair (forbidden symbol that never occurs): rules may
    # span row boundaries — smaller is possible, but the grammar no
    # longer factors into per-row nonterminals.
    unprotected = repair_compress(csrv.s, forbidden=-1)
    return [
        name,
        protected.size,
        unprotected.size,
        f"{100 * (protected.size - unprotected.size) / unprotected.size:+.2f}%",
    ]


def test_separator_protection_overhead(benchmark, dataset_matrix):
    s = CSRVMatrix.from_dense(dataset_matrix("census")).s
    benchmark.pedantic(lambda: repair_compress(s, forbidden=0), rounds=1, iterations=1)


# -- 2. min_frequency -----------------------------------------------------------------


def min_frequency_ablation(name: str) -> list:
    matrix = bench_matrix(name)
    csrv = CSRVMatrix.from_dense(matrix)
    row = [name]
    for threshold in (2, 4, 8, 16):
        grammar = repair_compress(csrv.s, min_frequency=threshold)
        gm = GrammarCompressedMatrix.from_grammar(
            grammar, csrv.values, csrv.shape, "re_ans"
        )
        row.append(_ratio(matrix, gm.size_bytes()))
    return row


# -- 3. block count -------------------------------------------------------------------


def block_count_ablation(name: str) -> list:
    matrix = bench_matrix(name)
    row = [name]
    for blocks in (1, 4, 16, 64):
        bm = BlockedMatrix.compress(matrix, variant="re_ans", n_blocks=blocks)
        row.append(_ratio(matrix, bm.size_bytes()))
    return row


@pytest.mark.parametrize("blocks", [1, 16])
def test_blocked_compression_cost(benchmark, dataset_matrix, blocks):
    matrix = dataset_matrix("covtype")
    benchmark.pedantic(
        lambda: BlockedMatrix.compress(matrix, variant="re_iv", n_blocks=blocks),
        rounds=1,
        iterations=1,
    )


# -- 4/5. pruning and PathCover variants ----------------------------------------------


def pruning_ablation(name: str) -> list[list]:
    matrix = bench_matrix(name)
    csm = column_similarity_matrix(matrix)
    rows = []
    for label, pruned in (
        ("none", csm),
        ("local k=4", prune_local(csm, 4)),
        ("local k=16", prune_local(csm, 16)),
        ("global k=4", prune_global(csm, 4)),
        ("global k=16", prune_global(csm, 16)),
    ):
        order = path_cover_order(pruned)
        gm = GrammarCompressedMatrix.compress(
            CSRVMatrix.from_dense(matrix, column_order=order), variant="re_ans"
        )
        rows.append([f"{name} {label}", _ratio(matrix, gm.size_bytes())])
    return rows


def pathcover_plus_ablation(name: str) -> list:
    matrix = bench_matrix(name)
    csm = prune_local(column_similarity_matrix(matrix), 16)
    sizes = []
    for algo in (path_cover_order, path_cover_plus_order):
        order = algo(csm)
        gm = GrammarCompressedMatrix.compress(
            CSRVMatrix.from_dense(matrix, column_order=order), variant="re_ans"
        )
        sizes.append(_ratio(matrix, gm.size_bytes()))
    return [name] + sizes


def test_pathcover_plus_cost(benchmark, dataset_matrix):
    csm = prune_local(column_similarity_matrix(dataset_matrix("census")), 16)
    benchmark.pedantic(lambda: path_cover_plus_order(csm), rounds=3, iterations=1)


# -- 6. rANS quantisation -------------------------------------------------------------


def rans_scale_ablation(name: str) -> list:
    matrix = bench_matrix(name)
    csrv = CSRVMatrix.from_dense(matrix)
    c = repair_compress(csrv.s).final
    row = [name]
    for scale_bits in (10, 12, 14):
        row.append(len(ans_compress(c, scale_bits=scale_bits)))
    return row


def test_ans_encode_cost(benchmark, dataset_matrix):
    c = repair_compress(CSRVMatrix.from_dense(dataset_matrix("census")).s).final
    benchmark.pedantic(lambda: ans_compress(c), rounds=3, iterations=1)


# -- 7b. intra-row reordering (the paper's future-work item) --------------------------


def intra_row_ablation(name: str) -> list:
    from repro.reorder.intra_row import reorder_within_rows

    matrix = bench_matrix(name)
    csrv = CSRVMatrix.from_dense(matrix)
    row = [name]
    for layout in ("original", "code", "frequency"):
        source = csrv if layout == "original" else reorder_within_rows(csrv, layout)
        gm = GrammarCompressedMatrix.compress(source, variant="re_ans")
        row.append(_ratio(matrix, gm.size_bytes()))
    return row


# -- 7. auto vs fixed format ----------------------------------------------------------


def auto_format_ablation(name: str) -> list:
    matrix = bench_matrix(name)
    row = [name]
    for variant in ("csrv", "re_32", "re_iv", "re_ans", "auto"):
        bm = BlockedMatrix.compress(matrix, variant=variant, n_blocks=16)
        row.append(_ratio(matrix, bm.size_bytes()))
    return row


# -- script mode ----------------------------------------------------------------------


def main() -> None:
    datasets = ("census", "airline78", "covtype")

    print(
        format_table(
            ["matrix", "|G| protected", "|G| unrestricted", "overhead"],
            [separator_ablation(n) for n in datasets],
            title="Ablation 1 — cost of protecting the $ separator in RePair",
        )
    )
    print()
    print(
        format_table(
            ["matrix", "f>=2", "f>=4", "f>=8", "f>=16"],
            [min_frequency_ablation(n) for n in datasets],
            title="Ablation 2 — re_ans size (% of dense) vs RePair pair threshold",
        )
    )
    print()
    print(
        format_table(
            ["matrix", "1 block", "4", "16", "64"],
            [block_count_ablation(n) for n in datasets],
            title="Ablation 3 — re_ans size (% of dense) vs row-block count",
        )
    )
    print()
    rows = []
    for n in datasets:
        rows.extend(pruning_ablation(n))
    print(
        format_table(
            ["config", "re_ans % after PathCover"],
            rows,
            title="Ablation 4 — CSM pruning mode × k",
        )
    )
    print()
    print(
        format_table(
            ["matrix", "PathCover %", "PathCover+ %"],
            [pathcover_plus_ablation(n) for n in datasets],
            title="Ablation 5 — PathCover vs PathCover+ (paper: + never wins)",
        )
    )
    print()
    print(
        format_table(
            ["matrix", "2^10", "2^12", "2^14"],
            [rans_scale_ablation(n) for n in datasets],
            title="Ablation 6 — ANS blob bytes vs probability quantisation",
        )
    )
    print()
    print(
        format_table(
            ["matrix", "csrv", "re_32", "re_iv", "re_ans", "auto"],
            [auto_format_ablation(n) for n in datasets],
            title="Ablation 7 — blockwise size (% of dense): fixed formats vs auto",
        )
    )
    print()
    print(
        format_table(
            ["matrix", "original", "intra-row code", "intra-row freq"],
            [intra_row_ablation(n) for n in datasets],
            title=(
                "Ablation 8 — re_ans size (% of dense) with intra-row pair "
                "reordering (paper future work)"
            ),
        )
    )


if __name__ == "__main__":
    sys.exit(main())

"""Table 3 — compression after column reordering (LKH/PathCover/MWM × k).

The paper's Table 3 applies each reordering algorithm with the
locally-pruned similarity matrix at k ∈ {4, 8, 16}, compresses the
whole reordered matrix with re_ans, and reports the ratio to the dense
size.  Expected shape: reordering helps the correlated/scattered
datasets (airline78, covtype, census), is neutral on susy/mnist, and
LKH is orders of magnitude slower than PathCover.

The pytest benchmarks time each reordering algorithm; script mode
prints the full table.
"""

from __future__ import annotations

import sys

import pytest

from repro.bench.reporting import format_table, ratio_pct
from repro.core.csrv import CSRVMatrix
from repro.core.gcm import GrammarCompressedMatrix
from repro.reorder.matching import matching_order
from repro.reorder.path_cover import path_cover_order
from repro.reorder.similarity import column_similarity_matrix, prune_local
from repro.reorder.tsp import tsp_order

try:
    from benchmarks.conftest import BENCH_ROWS, bench_matrix
except ImportError:
    from conftest import BENCH_ROWS, bench_matrix

K_VALUES = (4, 8, 16)
ALGORITHMS = {
    "LKH": tsp_order,
    "PathCover": path_cover_order,
    "MWM": matching_order,
}


def reordered_ratio(matrix, order) -> float:
    csrv = CSRVMatrix.from_dense(matrix, column_order=order)
    gm = GrammarCompressedMatrix.compress(csrv, variant="re_ans")
    return ratio_pct(gm.size_bytes(), matrix.size * 8)


# -- pytest benchmarks: reordering algorithm cost -------------------------------------


@pytest.fixture(scope="module")
def census_csm(dataset_matrix):
    return prune_local(column_similarity_matrix(dataset_matrix("census")), 16)


@pytest.mark.parametrize("algo", list(ALGORITHMS))
def test_reordering_algorithm(benchmark, census_csm, algo):
    benchmark.pedantic(
        lambda: ALGORITHMS[algo](census_csm), rounds=3, iterations=1
    )


def test_similarity_matrix_construction(benchmark, dataset_matrix):
    matrix = dataset_matrix("census")
    benchmark.pedantic(
        lambda: column_similarity_matrix(matrix), rounds=3, iterations=1
    )


# -- script mode ----------------------------------------------------------------------


def main() -> None:
    import time

    rows = []
    for name in BENCH_ROWS:
        matrix = bench_matrix(name)
        csm_full = column_similarity_matrix(matrix)
        for k in K_VALUES:
            csm = prune_local(csm_full, k)
            row = [f"{name} k={k}"]
            for algo in ALGORITHMS.values():
                t0 = time.perf_counter()
                order = algo(csm)
                elapsed = time.perf_counter() - t0
                row.append(reordered_ratio(matrix, order))
                row.append(f"[{elapsed:.2f}s]")
            rows.append(row)
        print(f"  [{name} done]", file=sys.stderr)
    headers = ["matrix"]
    for algo_name in ALGORITHMS:
        headers += [f"{algo_name} %", "time"]
    print(
        format_table(
            headers,
            rows,
            title=(
                "Table 3 — re_ans compression (% of dense) after column "
                "reordering, locally-pruned CSM"
            ),
        )
    )


if __name__ == "__main__":
    sys.exit(main())

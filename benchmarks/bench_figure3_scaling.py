"""Figure 3 — multithread scaling of re_iv and re_ans.

The paper plots, for 4/8/12/16 threads, the ratio of peak memory and of
running time against the single-thread version of the same algorithm.
Expected shape: time ratio well below 1 and falling with threads (they
measure speedups up to ~15×); memory ratio slightly above 1 and growing
faster for re_ans (the per-block decoded ``C`` is transient per active
thread).

The pytest benchmarks time one iteration per thread count; script mode
prints the two ratio series per dataset.
"""

from __future__ import annotations

import sys

import pytest

from repro.bench.harness import run_iterations
from repro.bench.memory import peak_mvm_pct
from repro.bench.reporting import format_table
from repro.core.blocked import BlockedMatrix

try:
    from benchmarks.conftest import BENCH_ROWS, bench_matrix
except ImportError:
    from conftest import BENCH_ROWS, bench_matrix

THREAD_COUNTS = (1, 4, 8, 12, 16)
VARIANTS = ("re_ans", "re_iv")
_ITERATIONS = 10


# -- pytest benchmarks ----------------------------------------------------------------


@pytest.mark.parametrize("threads", THREAD_COUNTS)
@pytest.mark.parametrize("variant", VARIANTS)
def test_scaling_iteration(benchmark, dataset_matrix, variant, threads):
    matrix = dataset_matrix("census")
    compressed = BlockedMatrix.compress(matrix, variant=variant, n_blocks=threads)

    def one_iteration():
        run_iterations(
            compressed, iterations=1, threads=threads, parallel_model="simulated"
        )

    benchmark.pedantic(one_iteration, rounds=3, iterations=1, warmup_rounds=1)


# -- script mode ----------------------------------------------------------------------


def scaling_series(name: str, variant: str) -> tuple[list[float], list[float]]:
    """(memory ratios, time ratios) vs the single-thread baseline."""
    matrix = bench_matrix(name)
    mems, times = [], []
    for threads in THREAD_COUNTS:
        compressed = BlockedMatrix.compress(
            matrix, variant=variant, n_blocks=threads
        )
        result = run_iterations(
            compressed, iterations=_ITERATIONS, threads=threads,
            parallel_model="simulated",
        )
        mems.append(peak_mvm_pct(compressed, threads=threads))
        times.append(result.seconds_per_iter)
    mem_ratio = [m / mems[0] for m in mems]
    time_ratio = [t / times[0] for t in times]
    return mem_ratio, time_ratio


def main() -> None:
    for variant in VARIANTS:
        rows_mem, rows_time = [], []
        for name in BENCH_ROWS:
            mem_ratio, time_ratio = scaling_series(name, variant)
            rows_mem.append([name] + mem_ratio)
            rows_time.append([name] + time_ratio)
            print(f"  [{variant}/{name} done]", file=sys.stderr)
        headers = ["matrix"] + [f"{t}t" for t in THREAD_COUNTS]
        print(
            format_table(
                headers,
                rows_mem,
                title=f"Figure 3 (top, {variant}) — peak-memory ratio vs 1 thread",
            )
        )
        print()
        print(
            format_table(
                headers,
                rows_time,
                title=f"Figure 3 (bottom, {variant}) — time ratio vs 1 thread",
            )
        )
        print()


if __name__ == "__main__":
    sys.exit(main())

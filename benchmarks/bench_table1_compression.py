"""Table 1 — compression ratios of gzip, xz, csrv, re_32, re_iv, re_ans.

The paper reports, for each of the seven matrices, the compressed size
as a percentage of the dense ``rows × cols × 8`` representation.  The
pytest benchmarks time the compressors; running this file as a script
prints the full table with the paper's published numbers alongside.
"""

from __future__ import annotations

import sys

import pytest

from repro.baselines import GzipMatrix, XzMatrix
from repro.bench.reporting import format_table, ratio_pct
from repro.core.csrv import CSRVMatrix
from repro.core.gcm import GrammarCompressedMatrix
from repro.core.repair import repair_compress
from repro.datasets import PROFILES

try:  # script mode has no pytest plugins
    from benchmarks.conftest import BENCH_ROWS, bench_matrix
except ImportError:
    from conftest import BENCH_ROWS, bench_matrix

COLUMNS = ("gzip", "xz", "csrv", "re_32", "re_iv", "re_ans")


def compression_ratios(name: str) -> dict[str, float]:
    """All Table 1 ratios (percent of dense) for one dataset."""
    matrix = bench_matrix(name)
    dense = matrix.size * 8
    csrv = CSRVMatrix.from_dense(matrix)
    sizes = {
        "gzip": GzipMatrix(matrix).size_bytes(),
        "xz": XzMatrix(matrix).size_bytes(),
        "csrv": csrv.size_bytes(),
    }
    grammar = repair_compress(csrv.s)
    for variant in ("re_32", "re_iv", "re_ans"):
        gm = GrammarCompressedMatrix.from_grammar(
            grammar, csrv.values, csrv.shape, variant
        )
        sizes[variant] = gm.size_bytes()
    return {k: ratio_pct(v, dense) for k, v in sizes.items()}


# -- pytest benchmarks: time each compressor on a representative input --------------


@pytest.mark.parametrize("name", ["census", "airline78"])
def test_gzip_compression(benchmark, dataset_matrix, name):
    matrix = dataset_matrix(name)
    benchmark(lambda: GzipMatrix(matrix))


@pytest.mark.parametrize("name", ["census", "airline78"])
def test_xz_compression(benchmark, dataset_matrix, name):
    matrix = dataset_matrix(name)
    benchmark(lambda: XzMatrix(matrix))


@pytest.mark.parametrize("name", ["census", "airline78"])
def test_csrv_encoding(benchmark, dataset_matrix, name):
    matrix = dataset_matrix(name)
    benchmark(lambda: CSRVMatrix.from_dense(matrix))


@pytest.mark.parametrize("name", ["census", "airline78", "covtype"])
def test_repair_compression(benchmark, dataset_matrix, name):
    s = CSRVMatrix.from_dense(dataset_matrix(name)).s
    benchmark.pedantic(lambda: repair_compress(s), rounds=1, iterations=1)


def test_variant_encoding_overhead(benchmark, dataset_matrix):
    csrv = CSRVMatrix.from_dense(dataset_matrix("census"))
    grammar = repair_compress(csrv.s)
    benchmark(
        lambda: GrammarCompressedMatrix.from_grammar(
            grammar, csrv.values, csrv.shape, "re_ans"
        )
    )


# -- script mode: print the full Table 1 --------------------------------------------


def main() -> None:
    rows = []
    for name in BENCH_ROWS:
        measured = compression_ratios(name)
        paper = PROFILES[name].paper_ratios
        row = [name]
        for col in COLUMNS:
            row.append(measured[col])
            row.append(f"({paper[col]:.2f})")
        rows.append(row)
    headers = ["matrix"]
    for col in COLUMNS:
        headers += [col, "paper"]
    print(
        format_table(
            headers,
            rows,
            title=(
                "Table 1 — compressed size as % of dense "
                "(measured on scaled synthetics; paper values in parentheses)"
            ),
        )
    )


if __name__ == "__main__":
    sys.exit(main())

"""Table 2 — peak memory and time per Eq. (4) iteration.

The paper's Table 2 reports, per dataset: single-thread re_iv / re_ans,
and 16-thread csrv / re_32 / re_iv / re_ans — peak memory as % of the
dense size plus mean seconds per iteration of the alternating
multiplication workload.

The pytest benchmarks time one Eq. (4) iteration per (variant, threads)
configuration; script mode prints the full table.
"""

from __future__ import annotations

import sys

import pytest

from repro.bench.harness import run_iterations
from repro.bench.memory import peak_mvm_pct
from repro.bench.reporting import format_table
from repro.core.blocked import BlockedMatrix

try:
    from benchmarks.conftest import BENCH_ROWS, TIMING_DATASETS, bench_matrix
except ImportError:
    from conftest import BENCH_ROWS, TIMING_DATASETS, bench_matrix

#: (variant, threads/blocks) configurations of the paper's Table 2.
CONFIGS = (
    ("re_iv", 1),
    ("re_ans", 1),
    ("csrv", 16),
    ("re_32", 16),
    ("re_iv", 16),
    ("re_ans", 16),
)

_ITERATIONS = 5


def _compressed(matrix, variant: str, threads: int) -> BlockedMatrix:
    return BlockedMatrix.compress(
        matrix, variant=variant, n_blocks=max(1, threads)
    )


# -- pytest benchmarks ----------------------------------------------------------------


@pytest.mark.parametrize("name", TIMING_DATASETS)
@pytest.mark.parametrize("variant,threads", CONFIGS, ids=[f"{v}-{t}t" for v, t in CONFIGS])
def test_eq4_iteration(benchmark, dataset_matrix, name, variant, threads):
    matrix = dataset_matrix(name)
    compressed = _compressed(matrix, variant, threads)

    def one_iteration():
        run_iterations(
            compressed, iterations=1, threads=threads, parallel_model="simulated"
        )

    benchmark.pedantic(one_iteration, rounds=3, iterations=1, warmup_rounds=1)


# -- script mode ----------------------------------------------------------------------


def main() -> None:
    headers = ["matrix"]
    for variant, threads in CONFIGS:
        headers += [f"{variant}/{threads}t mem%", "s/iter"]
    rows = []
    for name in BENCH_ROWS:
        matrix = bench_matrix(name)
        row = [name]
        for variant, threads in CONFIGS:
            compressed = _compressed(matrix, variant, threads)
            result = run_iterations(
                compressed,
                iterations=_ITERATIONS,
                threads=threads,
                parallel_model="simulated",
            )
            row.append(peak_mvm_pct(compressed, threads=threads))
            row.append(f"{result.seconds_per_iter:.4f}")
        rows.append(row)
        print(f"  [{name} done]", file=sys.stderr)
    print(
        format_table(
            headers,
            rows,
            title=(
                "Table 2 — modelled peak memory (% of dense) and measured "
                f"seconds/iteration over {_ITERATIONS} Eq.(4) iterations"
            ),
        )
    )


if __name__ == "__main__":
    sys.exit(main())

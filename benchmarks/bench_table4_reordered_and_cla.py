"""Table 4 — blockwise-reordered re_iv/re_ans vs CLA.

The paper's Table 4 applies the Section 5.3 recipe — 16 row blocks,
per-block reordering with the better of PathCover/MWM (k = 16, locally
pruned), blockwise compression — and reports size, peak memory and time
per iteration; the last columns give CLA's size/peak/time on the same
workload.  Expected shape: the grammar variants compress better than
CLA on most datasets and run the iteration faster.

The pytest benchmarks time the Eq. (4) iteration for the reordered
grammar matrices and for CLA; script mode prints the full table.
"""

from __future__ import annotations

import sys

import pytest

from repro.bench.harness import run_iterations
from repro.bench.memory import peak_mvm_pct
from repro.bench.reporting import format_table, ratio_pct
from repro.cla import CLAMatrix
from repro.reorder.pipeline import compress_with_reordering

try:
    from benchmarks.conftest import BENCH_ROWS, TIMING_DATASETS, bench_matrix
except ImportError:
    from conftest import BENCH_ROWS, TIMING_DATASETS, bench_matrix

N_BLOCKS = 16
THREADS = 16
_ITERATIONS = 5
#: The paper amortises CLA's (re-run-every-execution) compression over
#: its 500-iteration workload; we follow the same accounting.
PAPER_ITERATIONS = 500


# -- pytest benchmarks ----------------------------------------------------------------


@pytest.fixture(scope="module")
def reordered(dataset_matrix):
    cache = {}

    def get(name: str, variant: str):
        key = (name, variant)
        if key not in cache:
            cache[key] = compress_with_reordering(
                dataset_matrix(name), variant=variant, n_blocks=N_BLOCKS
            ).matrix
        return cache[key]

    return get


@pytest.mark.parametrize("name", TIMING_DATASETS)
@pytest.mark.parametrize("variant", ["re_iv", "re_ans"])
def test_reordered_eq4_iteration(benchmark, reordered, name, variant):
    compressed = reordered(name, variant)
    benchmark.pedantic(
        lambda: run_iterations(
            compressed, iterations=1, threads=THREADS, parallel_model="simulated"
        ),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )


@pytest.mark.parametrize("name", TIMING_DATASETS)
def test_cla_eq4_iteration(benchmark, dataset_matrix, name):
    # CLA's group kernels are single big vectorised ops; sequential
    # execution is its natural Python form (GIL, see bench.parallel).
    cla = CLAMatrix.compress(dataset_matrix(name))
    benchmark.pedantic(
        lambda: run_iterations(cla, iterations=1, threads=1),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )


@pytest.mark.parametrize("name", TIMING_DATASETS)
def test_cla_compression(benchmark, dataset_matrix, name):
    matrix = dataset_matrix(name)
    benchmark.pedantic(
        lambda: CLAMatrix.compress(matrix), rounds=1, iterations=1
    )


# -- script mode ----------------------------------------------------------------------


def main() -> None:
    import time

    headers = [
        "matrix",
        "re_iv size%", "mem%", "s/iter",
        "re_ans size%", "mem%", "s/iter",
        "CLA size%", "mem%", "s/iter",
    ]
    rows = []
    for name in BENCH_ROWS:
        matrix = bench_matrix(name)
        dense = matrix.size * 8
        row = [name]
        for variant in ("re_iv", "re_ans"):
            result = compress_with_reordering(
                matrix, variant=variant, n_blocks=N_BLOCKS
            )
            res = run_iterations(
                result.matrix,
                iterations=_ITERATIONS,
                threads=THREADS,
                parallel_model="simulated",
            )
            row.append(ratio_pct(result.matrix.size_bytes(), dense))
            row.append(peak_mvm_pct(result.matrix, threads=THREADS))
            row.append(f"{res.seconds_per_iter:.4f}")
        # CLA recompresses at every execution (Section 5.4); amortise
        # the compression over the paper's 500-iteration workload.
        t0 = time.perf_counter()
        cla = CLAMatrix.compress(matrix)
        compress_seconds = time.perf_counter() - t0
        res = run_iterations(cla, iterations=_ITERATIONS, threads=1)
        cla_time = res.seconds_per_iter + compress_seconds / PAPER_ITERATIONS
        row.append(ratio_pct(cla.size_bytes(), dense))
        row.append(peak_mvm_pct(cla, threads=THREADS))
        row.append(f"{cla_time:.4f}")
        rows.append(row)
        print(f"  [{name} done]", file=sys.stderr)
    print(
        format_table(
            headers,
            rows,
            title=(
                "Table 4 — blockwise-reordered grammar compression vs CLA "
                f"({N_BLOCKS} blocks, {THREADS} threads)"
            ),
        )
    )


if __name__ == "__main__":
    sys.exit(main())

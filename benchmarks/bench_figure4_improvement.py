"""Figure 4 — relative peak-memory improvement from column reordering.

The paper plots ``(p_o − p_r) / p_o`` per dataset, where ``p_o`` and
``p_r`` are the Eq. (4) peak memory of the original and the
blockwise-reordered matrix (16 blocks, 16 threads) for re_iv and
re_ans.  Expected shape: clear improvements on airline78 / covtype /
census, ≈0 (or slightly negative) on susy and mnist2m.

The pytest benchmark times the full reorder-and-compress pipeline;
script mode prints the figure's two series.
"""

from __future__ import annotations

import sys

import pytest

from repro.bench.memory import peak_mvm_pct
from repro.bench.reporting import format_table
from repro.core.blocked import BlockedMatrix
from repro.reorder.pipeline import compress_with_reordering

try:
    from benchmarks.conftest import BENCH_ROWS, bench_matrix
except ImportError:
    from conftest import BENCH_ROWS, bench_matrix

N_BLOCKS = 16
THREADS = 16


def improvement_pct(matrix, variant: str) -> float:
    """(p_o − p_r) / p_o in percent, as plotted in Figure 4."""
    original = BlockedMatrix.compress(matrix, variant=variant, n_blocks=N_BLOCKS)
    reordered = compress_with_reordering(
        matrix, variant=variant, n_blocks=N_BLOCKS
    ).matrix
    p_o = peak_mvm_pct(original, threads=THREADS)
    p_r = peak_mvm_pct(reordered, threads=THREADS)
    return 100.0 * (p_o - p_r) / p_o


# -- pytest benchmarks ----------------------------------------------------------------


@pytest.mark.parametrize("variant", ["re_iv", "re_ans"])
def test_reorder_pipeline_cost(benchmark, dataset_matrix, variant):
    matrix = dataset_matrix("covtype")
    benchmark.pedantic(
        lambda: compress_with_reordering(matrix, variant=variant, n_blocks=N_BLOCKS),
        rounds=1,
        iterations=1,
    )


# -- script mode ----------------------------------------------------------------------


def main() -> None:
    rows = []
    for name in BENCH_ROWS:
        matrix = bench_matrix(name)
        rows.append(
            [
                name,
                improvement_pct(matrix, "re_iv"),
                improvement_pct(matrix, "re_ans"),
            ]
        )
        print(f"  [{name} done]", file=sys.stderr)
    print(
        format_table(
            ["matrix", "re_iv improv %", "re_ans improv %"],
            rows,
            title=(
                "Figure 4 — relative peak-memory improvement from "
                "blockwise column reordering"
            ),
        )
    )


if __name__ == "__main__":
    sys.exit(main())

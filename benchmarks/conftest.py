"""Shared infrastructure for the table/figure benchmarks.

Every ``bench_*.py`` file regenerates one table or figure of the paper:

=========================================  =====================================
file                                        paper artefact
=========================================  =====================================
``bench_table1_compression.py``             Table 1 (compression ratios)
``bench_table2_mvm.py``                     Table 2 (peak memory / time per iteration)
``bench_figure3_scaling.py``                Figure 3 (multithread scaling)
``bench_table3_reordering.py``              Table 3 (reordering × k)
``bench_table4_reordered_and_cla.py``       Table 4 (blockwise reorder + CLA)
``bench_figure4_improvement.py``            Figure 4 (peak-memory improvement)
=========================================  =====================================

``pytest benchmarks/ --benchmark-only`` times the underlying operations;
running a file as a script (``python benchmarks/bench_table1_compression.py``)
prints the full paper-style table (these are the outputs recorded in
EXPERIMENTS.md).

Matrices are scaled-down synthetics (see ``repro.datasets``); the row
counts below keep the whole suite in the minutes range while leaving
enough redundancy for the compression effects to show.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import get_dataset

#: Scaled row counts per dataset used by all benchmarks.
BENCH_ROWS = {
    "susy": 1500,
    "higgs": 1500,
    "airline78": 2000,
    "covtype": 1500,
    "census": 1500,
    "optical": 600,
    "mnist2m": 600,
}

#: The subset used by the heavier timing benchmarks.
TIMING_DATASETS = ("census", "airline78", "covtype")


def bench_matrix(name: str) -> np.ndarray:
    """The benchmark-scale dense matrix for a dataset."""
    return np.asarray(get_dataset(name, n_rows=BENCH_ROWS[name]).matrix)


@pytest.fixture(scope="session")
def dataset_matrix():
    """Session-cached dataset accessor for the benchmark tests."""
    cache: dict[str, np.ndarray] = {}

    def get(name: str) -> np.ndarray:
        if name not in cache:
            cache[name] = bench_matrix(name)
        return cache[name]

    return get
